//! `(α, β)`-ruling sets — the problem family whose deterministic LOCAL
//! lower bounds (Balliu–Brandt–Olivetti, FOCS 2020) the paper cites as
//! further grist for the Theorem 14 lifting ("for some more lower bounds to
//! which the framework is applicable, see … ruling sets").
//!
//! A set `R` is an `(α, β)`-ruling set when nodes of `R` are pairwise at
//! distance ≥ α and every node is within distance β of `R`. `(2, 1)`-ruling
//! sets are exactly maximal independent sets.

use crate::problem::{GraphProblem, Violation};
use csmpc_graph::Graph;

/// The `(α, β)`-ruling-set problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RulingSet {
    /// Minimum pairwise distance between chosen nodes (`α ≥ 1`).
    pub alpha: usize,
    /// Maximum distance from any node to the set (`β ≥ 1`).
    pub beta: usize,
}

impl RulingSet {
    /// The MIS instance `(2, 1)`.
    #[must_use]
    pub fn mis() -> Self {
        RulingSet { alpha: 2, beta: 1 }
    }
}

/// Multi-source BFS distances to the chosen set (`usize::MAX` if none
/// reachable).
#[must_use]
pub fn distance_to_set(g: &Graph, in_set: &[bool]) -> Vec<usize> {
    let mut dist = vec![usize::MAX; g.n()];
    let mut queue = std::collections::VecDeque::new();
    for v in 0..g.n() {
        if in_set[v] {
            dist[v] = 0;
            queue.push_back(v);
        }
    }
    while let Some(v) = queue.pop_front() {
        for &w in g.neighbors(v) {
            let w = w as usize;
            if dist[w] == usize::MAX {
                dist[w] = dist[v] + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

impl GraphProblem for RulingSet {
    type Label = bool;

    fn name(&self) -> &str {
        "ruling-set"
    }

    fn validate(&self, g: &Graph, labels: &[bool]) -> Result<(), Violation> {
        if labels.len() != g.n() {
            return Err(Violation::global("label count mismatch"));
        }
        // Pairwise distance ≥ α: BFS from each chosen node to depth α−1.
        for v in 0..g.n() {
            if !labels[v] {
                continue;
            }
            let dist = g.bfs_distances(v);
            for w in 0..g.n() {
                if w != v && labels[w] && dist[w] < self.alpha {
                    return Err(Violation::at(
                        v,
                        format!(
                            "chosen nodes {v},{w} at distance {} < α={}",
                            dist[w], self.alpha
                        ),
                    ));
                }
            }
        }
        // Domination within β.
        let d = distance_to_set(g, labels);
        if let Some(v) = (0..g.n()).find(|&v| d[v] == usize::MAX || d[v] > self.beta) {
            return Err(Violation::at(
                v,
                format!("node {v} at distance > β={} from the set", self.beta),
            ));
        }
        Ok(())
    }

    fn check_radius(&self) -> Option<usize> {
        Some(self.alpha.max(self.beta))
    }

    fn validate_node_ball(&self, ball: &Graph, center: usize, labels: &[bool]) -> bool {
        let dist = ball.bfs_distances(center);
        if labels[center] {
            // No other chosen node within α−1.
            !(0..ball.n()).any(|w| w != center && labels[w] && dist[w] < self.alpha)
        } else {
            // Some chosen node within β.
            (0..ball.n()).any(|w| labels[w] && dist[w] <= self.beta)
        }
    }
}

/// Greedy `(2, β)`-ruling set: greedy MIS on `G^{β}`-style spacing — here
/// simply greedy by ID with an exclusion radius of `spacing − 1`.
#[must_use]
pub fn greedy_ruling_set(g: &Graph, alpha: usize, _beta: usize) -> Vec<bool> {
    let mut order: Vec<usize> = (0..g.n()).collect();
    order.sort_by_key(|&v| g.id(v));
    let mut chosen = vec![false; g.n()];
    let mut blocked = vec![false; g.n()];
    for v in order {
        if blocked[v] {
            continue;
        }
        chosen[v] = true;
        // Block everything within distance α−1.
        let dist = g.bfs_distances(v);
        for w in 0..g.n() {
            if dist[w] < alpha {
                blocked[w] = true;
            }
        }
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mis::Mis;
    use csmpc_graph::generators;
    use csmpc_graph::rng::Seed;

    #[test]
    fn two_one_equals_mis() {
        for s in 0..8 {
            let g = generators::random_gnp(20, 0.2, Seed(s));
            let rs = greedy_ruling_set(&g, 2, 1);
            assert!(RulingSet::mis().is_valid(&g, &rs), "seed {s}");
            assert!(Mis.is_valid(&g, &rs), "(2,1)-ruling set must be an MIS");
        }
    }

    #[test]
    fn greedy_three_two_on_cycle() {
        let g = generators::cycle(30);
        let rs = greedy_ruling_set(&g, 3, 2);
        let p = RulingSet { alpha: 3, beta: 2 };
        assert!(p.is_valid(&g, &rs));
    }

    #[test]
    fn spacing_violation_detected() {
        let g = generators::path(4);
        let p = RulingSet { alpha: 3, beta: 2 };
        // Nodes 0 and 2 are at distance 2 < 3.
        let labels = vec![true, false, true, false];
        let err = p.validate(&g, &labels).unwrap_err();
        assert!(err.reason.contains("< α"));
    }

    #[test]
    fn domination_violation_detected() {
        let g = generators::path(7);
        let p = RulingSet { alpha: 2, beta: 1 };
        // Only node 0 chosen: node 6 at distance 6 > 1.
        let mut labels = vec![false; 7];
        labels[0] = true;
        let err = p.validate(&g, &labels).unwrap_err();
        assert!(err.reason.contains("> β"));
    }

    #[test]
    fn ball_validation_consistent() {
        use crate::problem::radius_checkability_violations;
        let g = generators::cycle(12);
        let p = RulingSet { alpha: 3, beta: 2 };
        let rs = greedy_ruling_set(&g, 3, 2);
        assert!(radius_checkability_violations(&p, &g, &rs).is_empty());
    }

    #[test]
    fn ruling_sets_are_replicable() {
        // Radius-checkable ⇒ 0-replicable (Lemma 10): probe it.
        use crate::replicability::probe;
        let p = RulingSet { alpha: 3, beta: 2 };
        let g = generators::cycle(9);
        let rs = greedy_ruling_set(&g, 3, 2);
        let pr = probe(&p, &g, &rs, &true, 1);
        assert!(pr.holds());
    }
}
