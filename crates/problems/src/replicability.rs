//! `R`-replicability (Definition 9) and its empirical checker.
//!
//! A problem is `R`-replicable when validity on the *simulation graph*
//! `Γ_G` — at least `|V(G)|^R` ID-sharing copies of `G` plus fewer than
//! `|V(G)|` isolated nodes — of the copy-wise labeling `L'` implies validity
//! of `L` on `G` itself. This is the minimal property that lets Lemma 25
//! transfer a component-stable MPC algorithm's guarantee on `Γ_G` back to
//! `G`, and it is what excludes contrived problems like
//! [`crate::consecutive_path::ConsecutiveIdPath`] from the lifting theorem.

use crate::problem::GraphProblem;
use csmpc_graph::ops::{replicated, with_isolated_nodes};
use csmpc_graph::{Graph, NodeId};

/// The `Γ_G` construction: `copies ≥ |V(G)|^R` disjoint copies of `G` (same
/// IDs, fresh names except the true copy) plus `isolated < |V(G)|` isolated
/// nodes sharing one ID.
///
/// Returns the graph and the number of nodes per copy (for label layout).
///
/// # Panics
///
/// Panics if `g` is empty or `isolated >= g.n()`.
#[must_use]
pub fn gamma_graph(g: &Graph, copies: usize, isolated: usize) -> Graph {
    assert!(g.n() >= 1, "Γ_G needs a non-empty base graph");
    assert!(
        isolated < g.n().max(1),
        "Definition 9 requires fewer than |V(G)| isolated nodes"
    );
    let body = replicated(g, copies, 1_000_000_007);
    let max_id = (0..g.n()).map(|v| g.id(v).0).max().unwrap_or(0);
    with_isolated_nodes(&body, isolated, NodeId(max_id + 1), 2_000_000_011)
}

/// Lays out `L'` on `Γ_G`: `labels` on every copy, `iso_label` on isolated
/// nodes.
#[must_use]
pub fn gamma_labels<L: Clone>(
    labels: &[L],
    copies: usize,
    isolated: usize,
    iso_label: &L,
) -> Vec<L> {
    let mut out = Vec::with_capacity(labels.len() * copies + isolated);
    for _ in 0..copies {
        out.extend(labels.iter().cloned());
    }
    out.extend(std::iter::repeat_n(iso_label.clone(), isolated));
    out
}

/// Outcome of one replicability probe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicabilityProbe {
    /// Was `L'` valid on `Γ_G`?
    pub gamma_valid: bool,
    /// Was `L` valid on `G`?
    pub g_valid: bool,
    /// Number of copies used.
    pub copies: usize,
    /// Number of isolated nodes used.
    pub isolated: usize,
}

impl ReplicabilityProbe {
    /// The Definition 9 implication: `gamma_valid ⇒ g_valid`.
    #[must_use]
    pub fn holds(&self) -> bool {
        !self.gamma_valid || self.g_valid
    }

    /// A *witness of non-replicability*: `Γ_G` accepted but `G` rejected.
    #[must_use]
    pub fn refutes(&self) -> bool {
        !self.holds()
    }
}

/// Probes `R`-replicability of `problem` on one `(G, L, ℓ)` triple, using
/// exactly `max(|V|^R, 1)` copies and `|V| − 1` isolated nodes.
///
/// # Panics
///
/// Panics if `|V(G)| < 2` (Definition 9 assumes `|V| ≥ 2`) or the number of
/// copies overflows practical limits (keep `|V|^R` small).
#[must_use]
pub fn probe<P: GraphProblem>(
    problem: &P,
    g: &Graph,
    labels: &[P::Label],
    iso_label: &P::Label,
    r: u32,
) -> ReplicabilityProbe {
    assert!(g.n() >= 2, "Definition 9 assumes |V(G)| >= 2");
    let copies = g.n().pow(r).max(1);
    let isolated = g.n() - 1;
    let gamma = gamma_graph(g, copies, isolated);
    let glabels = gamma_labels(labels, copies, isolated, iso_label);
    ReplicabilityProbe {
        gamma_valid: problem.is_valid(&gamma, &glabels),
        g_valid: problem.is_valid(g, labels),
        copies,
        isolated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consecutive_path::ConsecutiveIdPath;
    use crate::mis::{LargeIndependentSet, Mis};
    use csmpc_graph::generators;
    use csmpc_graph::rng::{Seed, SplitMix64};

    #[test]
    fn gamma_structure() {
        let g = generators::cycle(4);
        let gamma = gamma_graph(&g, 3, 2);
        assert_eq!(gamma.n(), 3 * 4 + 2);
        assert_eq!(gamma.m(), 3 * 4);
        assert_eq!(gamma.component_count(), 3 + 2);
        assert!(gamma.is_legal());
    }

    #[test]
    fn mis_replicability_holds_on_valid_and_invalid_labelings() {
        // Lemma 10: r-radius checkable => 0-replicable (so also 1-, 2-...).
        let g = generators::path(4);
        let valid = vec![true, false, false, true];
        let invalid = vec![true, true, false, false];
        for labels in [&valid, &invalid] {
            for iso in [true, false] {
                let p = probe(&Mis, &g, labels, &iso, 1);
                assert!(p.holds(), "MIS replicability must hold: {p:?}");
            }
        }
    }

    #[test]
    fn mis_gamma_validity_tracks_copy_validity() {
        let g = generators::path(4);
        let valid = vec![true, false, false, true];
        // iso = true keeps isolated nodes maximal (isolated node must be in
        // any MIS), so Γ should be valid exactly when the copy labeling is.
        let p = probe(&Mis, &g, &valid, &true, 1);
        assert!(p.gamma_valid && p.g_valid);
        // iso = false makes isolated nodes violate maximality on Γ.
        let p2 = probe(&Mis, &g, &valid, &false, 1);
        assert!(!p2.gamma_valid && p2.g_valid);
        assert!(p2.holds());
    }

    #[test]
    fn large_is_two_replicable_on_samples() {
        // Lemma 11: the Ω(n/Δ)-IS problem is 2-replicable.
        let mut rng = SplitMix64::new(Seed(42));
        let problem = LargeIndependentSet { c: 0.25 };
        for t in 0..20 {
            let g = generators::random_gnp(6, 0.4, Seed(t));
            if g.n() < 2 {
                continue;
            }
            let labels: Vec<bool> = (0..g.n()).map(|_| rng.bit()).collect();
            let p = probe(&problem, &g, &labels, &false, 2);
            assert!(p.holds(), "Lemma 11 violated on sample {t}: {p:?}");
        }
    }

    #[test]
    fn consecutive_path_is_not_replicable() {
        // The Section 2.1 counterexample: G is a YES instance; label it all-NO
        // (invalid on G). Γ_G is disconnected, hence a NO instance, so the
        // all-NO labeling is *valid* on Γ_G — the implication fails.
        let g = generators::consecutive_id_path(4);
        let all_no = vec![false; 4];
        let p = probe(&ConsecutiveIdPath, &g, &all_no, &false, 2);
        assert!(
            p.refutes(),
            "expected a non-replicability witness, got {p:?}"
        );
    }

    #[test]
    fn probe_counts() {
        let g = generators::path(3);
        let p = probe(&Mis, &g, &[true, false, true], &true, 2);
        assert_eq!(p.copies, 9);
        assert_eq!(p.isolated, 2);
    }

    #[test]
    #[should_panic(expected = "|V(G)| >= 2")]
    fn probe_rejects_tiny_graphs() {
        let g = csmpc_graph::GraphBuilder::with_sequential_nodes(1)
            .build()
            .unwrap();
        let _ = probe(&Mis, &g, &[true], &true, 1);
    }
}
