//! The Section 2.1 counterexample problem: every node outputs **YES** iff
//! the entire graph is a simple path with consecutive node IDs.
//!
//! The paper uses this problem to show that once component-stable
//! algorithms may depend on `n` (which they must, to include nontrivial
//! randomized algorithms), not every LOCAL lower bound can lift: this
//! problem has an `O(1)`-round MPC algorithm yet a trivial `n−1`-round
//! LOCAL lower bound. It is *not* `O(1)`-replicable — which is exactly how
//! the replicability restriction (Definition 9) excludes it.

use crate::problem::{GraphProblem, Violation};
use csmpc_graph::Graph;

/// Ground truth: is `g` a simple path whose IDs are consecutive along it?
#[must_use]
pub fn is_consecutive_id_path(g: &Graph) -> bool {
    let n = g.n();
    if n == 0 || !g.is_connected() {
        return false;
    }
    if n == 1 {
        return true;
    }
    let deg1: Vec<usize> = (0..n).filter(|&v| g.degree(v) == 1).collect();
    if deg1.len() != 2 || (0..n).any(|v| g.degree(v) > 2) {
        return false;
    }
    // Walk from one endpoint; IDs must step by +1 or −1 consistently.
    let mut prev = usize::MAX;
    let mut cur = deg1[0];
    let mut step: Option<i64> = None;
    for _ in 1..n {
        let next = g
            .neighbors(cur)
            .iter()
            .map(|&w| w as usize)
            .find(|&w| w != prev);
        let Some(next) = next else { return false };
        let diff = g.id(next).0 as i64 - g.id(cur).0 as i64;
        match step {
            None => {
                if diff != 1 && diff != -1 {
                    return false;
                }
                step = Some(diff);
            }
            Some(s) => {
                if diff != s {
                    return false;
                }
            }
        }
        prev = cur;
        cur = next;
    }
    true
}

/// The YES/NO problem; every node must output the same, correct verdict.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConsecutiveIdPath;

impl GraphProblem for ConsecutiveIdPath {
    type Label = bool;

    fn name(&self) -> &str {
        "consecutive-id-path"
    }

    fn validate(&self, g: &Graph, labels: &[bool]) -> Result<(), Violation> {
        if labels.len() != g.n() {
            return Err(Violation::global("label count mismatch"));
        }
        let truth = is_consecutive_id_path(g);
        match labels.iter().position(|&b| b != truth) {
            None => Ok(()),
            Some(v) => Err(Violation::at(
                v,
                format!("answered {} but the truth is {truth}", labels[v]),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csmpc_graph::generators;

    #[test]
    fn yes_instance() {
        let g = generators::consecutive_id_path(8);
        assert!(is_consecutive_id_path(&g));
        assert!(ConsecutiveIdPath.is_valid(&g, &[true; 8]));
        assert!(!ConsecutiveIdPath.is_valid(&g, &[false; 8]));
    }

    #[test]
    fn endpoint_flip_makes_no_instance() {
        let g = generators::consecutive_id_path_broken(8);
        assert!(!is_consecutive_id_path(&g));
        assert!(ConsecutiveIdPath.is_valid(&g, &[false; 8]));
    }

    #[test]
    fn cycle_is_no() {
        assert!(!is_consecutive_id_path(&generators::cycle(5)));
    }

    #[test]
    fn disconnected_is_no() {
        let g = generators::random_forest(&[3, 3], csmpc_graph::rng::Seed(1));
        assert!(!is_consecutive_id_path(&g));
    }

    #[test]
    fn single_node_is_yes() {
        let g = csmpc_graph::GraphBuilder::with_sequential_nodes(1)
            .build()
            .unwrap();
        assert!(is_consecutive_id_path(&g));
    }

    #[test]
    fn descending_ids_also_yes() {
        let g = generators::path(5);
        let rev = csmpc_graph::ops::relabel_ids(&g, |v, _| csmpc_graph::NodeId((4 - v) as u64));
        assert!(is_consecutive_id_path(&rev));
    }

    #[test]
    fn shuffled_ids_are_no() {
        let g = generators::path(6);
        let shuffled = generators::shuffle_identity(&g, 100, 0, csmpc_graph::rng::Seed(3));
        // A random permutation of 6 IDs is consecutive-in-order with
        // negligible probability; this seed gives a NO instance.
        assert!(!is_consecutive_id_path(&shuffled));
    }

    #[test]
    fn mixed_answers_rejected() {
        let g = generators::consecutive_id_path(4);
        let mut labels = vec![true; 4];
        labels[2] = false;
        let err = ConsecutiveIdPath.validate(&g, &labels).unwrap_err();
        assert_eq!(err.node, Some(2));
    }
}
