//! The problem framework of Section 2.3: vertex-labeling graph problems,
//! `r`-radius checkability (Definition 8), and per-node validity.
//!
//! A problem assigns to every legal input graph a set of valid output
//! labelings; validity may depend on topology and **IDs** but never on
//! names. `r`-radius-checkable problems additionally have a notion of a
//! *single node's* output being valid, decidable from its `r`-ball — these
//! are exactly the problems verifiable in `r` LOCAL rounds, and include all
//! LCL problems.

use csmpc_graph::ball::ball;
use csmpc_graph::Graph;
use std::fmt;

/// Why a labeling was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The node index the violation is attributed to, when there is one.
    pub node: Option<usize>,
    /// Human-readable reason.
    pub reason: String,
}

impl Violation {
    /// A violation pinned to a node.
    #[must_use]
    pub fn at(node: usize, reason: impl Into<String>) -> Self {
        Violation {
            node: Some(node),
            reason: reason.into(),
        }
    }

    /// A global violation.
    #[must_use]
    pub fn global(reason: impl Into<String>) -> Self {
        Violation {
            node: None,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.node {
            Some(v) => write!(f, "node {v}: {}", self.reason),
            None => write!(f, "{}", self.reason),
        }
    }
}

/// A vertex-labeling graph problem (Section 2.3).
pub trait GraphProblem {
    /// The finite output alphabet `Σ`.
    type Label: Clone + PartialEq + fmt::Debug;

    /// Problem name for reporting.
    fn name(&self) -> &str;

    /// Checks an overall labeling. Must not depend on node names.
    ///
    /// # Errors
    ///
    /// The first [`Violation`] found.
    fn validate(&self, g: &Graph, labels: &[Self::Label]) -> Result<(), Violation>;

    /// `Some(r)` when the problem is `r`-radius checkable (Definition 8):
    /// a node's output validity is a function of its `r`-ball and the
    /// outputs therein. `None` for global/approximation problems.
    fn check_radius(&self) -> Option<usize> {
        None
    }

    /// For `r`-radius-checkable problems: validity of one node's output
    /// given its `r`-ball (with ball-local labels, the center's included).
    ///
    /// Default panics; problems returning `Some(r)` from
    /// [`GraphProblem::check_radius`] must override it.
    fn validate_node_ball(
        &self,
        _ball: &Graph,
        _center: usize,
        _ball_labels: &[Self::Label],
    ) -> bool {
        unimplemented!("problem {} is not radius-checkable", self.name())
    }

    /// Convenience: is the labeling valid?
    fn is_valid(&self, g: &Graph, labels: &[Self::Label]) -> bool {
        self.validate(g, labels).is_ok()
    }
}

/// For an `r`-radius-checkable problem, validates node `v` of `g` by
/// extracting its ball and delegating to
/// [`GraphProblem::validate_node_ball`].
///
/// # Panics
///
/// Panics if the problem is not radius-checkable.
pub fn validate_node<P: GraphProblem>(
    problem: &P,
    g: &Graph,
    v: usize,
    labels: &[P::Label],
) -> bool {
    let r = problem
        .check_radius()
        .expect("validate_node requires a radius-checkable problem");
    let (b, c, original) = ball(g, v, r);
    let ball_labels: Vec<P::Label> = original.iter().map(|&u| labels[u].clone()).collect();
    problem.validate_node_ball(&b, c, &ball_labels)
}

/// Checks the Definition 8 consistency law on a concrete instance: for an
/// `r`-radius-checkable problem, the overall validation must accept exactly
/// when every node's ball validation accepts.
///
/// Returns node indices where the two disagree (empty = consistent).
pub fn radius_checkability_violations<P: GraphProblem>(
    problem: &P,
    g: &Graph,
    labels: &[P::Label],
) -> Vec<usize> {
    let overall = problem.is_valid(g, labels);
    let per_node: Vec<bool> = (0..g.n())
        .map(|v| validate_node(problem, g, v, labels))
        .collect();
    let all_nodes = per_node.iter().all(|&b| b);
    if overall == all_nodes {
        Vec::new()
    } else {
        (0..g.n()).filter(|&v| !per_node[v]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csmpc_graph::generators;

    /// Toy problem: every node must output its own degree.
    struct DegreeLabeling;

    impl GraphProblem for DegreeLabeling {
        type Label = usize;
        fn name(&self) -> &str {
            "degree-labeling"
        }
        fn validate(&self, g: &Graph, labels: &[usize]) -> Result<(), Violation> {
            for (v, &label) in labels.iter().enumerate() {
                if label != g.degree(v) {
                    return Err(Violation::at(v, "label is not the degree"));
                }
            }
            Ok(())
        }
        fn check_radius(&self) -> Option<usize> {
            Some(1)
        }
        fn validate_node_ball(&self, ball: &Graph, center: usize, labels: &[usize]) -> bool {
            labels[center] == ball.degree(center)
        }
    }

    #[test]
    fn degree_labeling_valid() {
        let g = generators::star(3);
        let labels = vec![3usize, 1, 1, 1];
        assert!(DegreeLabeling.is_valid(&g, &labels));
        assert!(radius_checkability_violations(&DegreeLabeling, &g, &labels).is_empty());
    }

    #[test]
    fn degree_labeling_invalid() {
        let g = generators::star(3);
        let labels = vec![2usize, 1, 1, 1];
        let err = DegreeLabeling.validate(&g, &labels).unwrap_err();
        assert_eq!(err.node, Some(0));
        // Per-node and overall agree (both invalid), so no *checkability*
        // violation even though the labeling is wrong.
        assert!(radius_checkability_violations(&DegreeLabeling, &g, &labels).is_empty());
    }

    #[test]
    fn node_validation_matches() {
        let g = generators::path(4);
        let labels = vec![1usize, 2, 2, 1];
        for v in 0..4 {
            assert!(validate_node(&DegreeLabeling, &g, v, &labels));
        }
    }
}
