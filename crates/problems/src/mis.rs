//! Maximal independent set (MIS) and the large-independent-set problem of
//! Theorem 5.

use crate::problem::{GraphProblem, Violation};
use csmpc_graph::Graph;

/// Maximal independent set: `true` = in the set. Valid iff no two adjacent
/// nodes are in the set and every node outside has a neighbor inside.
/// 1-radius checkable (an LCL).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Mis;

impl GraphProblem for Mis {
    type Label = bool;

    fn name(&self) -> &str {
        "maximal-independent-set"
    }

    fn validate(&self, g: &Graph, labels: &[bool]) -> Result<(), Violation> {
        if labels.len() != g.n() {
            return Err(Violation::global("label count mismatch"));
        }
        for v in 0..g.n() {
            if labels[v] {
                if let Some(&w) = g.neighbors(v).iter().find(|&&w| labels[w as usize]) {
                    return Err(Violation::at(
                        v,
                        format!("adjacent nodes {v} and {w} both in the set"),
                    ));
                }
            } else if !g.neighbors(v).iter().any(|&w| labels[w as usize]) {
                return Err(Violation::at(v, "outside the set with no neighbor inside"));
            }
        }
        Ok(())
    }

    fn check_radius(&self) -> Option<usize> {
        Some(1)
    }

    fn validate_node_ball(&self, ball: &Graph, center: usize, labels: &[bool]) -> bool {
        if labels[center] {
            !ball.neighbors(center).iter().any(|&w| labels[w as usize])
        } else {
            ball.neighbors(center).iter().any(|&w| labels[w as usize])
        }
    }
}

/// Independence (without maximality): the building block validator.
#[must_use]
pub fn is_independent_set(g: &Graph, labels: &[bool]) -> bool {
    (0..g.n()).all(|v| !labels[v] || !g.neighbors(v).iter().any(|&w| labels[w as usize]))
}

/// Size of the set.
#[must_use]
pub fn set_size(labels: &[bool]) -> usize {
    labels.iter().filter(|&&b| b).count()
}

/// The Theorem 5 problem: an independent set of size at least
/// `c · n / max(Δ, 1)`. An approximation problem — *not* radius checkable —
/// and 2-replicable (Lemma 11).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LargeIndependentSet {
    /// The constant `c` in the `c·n/Δ` size bound.
    pub c: f64,
}

impl Default for LargeIndependentSet {
    /// `c = 1/4`, matching the deterministic guarantee of Claim 52
    /// (`n/(4Δ+1) ≥ n/(4Δ)·(1−o(1))`).
    fn default() -> Self {
        LargeIndependentSet { c: 0.2 }
    }
}

impl LargeIndependentSet {
    /// The size threshold on an `n`-node graph of maximum degree `Δ`.
    #[must_use]
    pub fn threshold(&self, n: usize, delta: usize) -> usize {
        (self.c * n as f64 / delta.max(1) as f64).floor() as usize
    }
}

impl GraphProblem for LargeIndependentSet {
    type Label = bool;

    fn name(&self) -> &str {
        "large-independent-set"
    }

    fn validate(&self, g: &Graph, labels: &[bool]) -> Result<(), Violation> {
        if labels.len() != g.n() {
            return Err(Violation::global("label count mismatch"));
        }
        for v in 0..g.n() {
            if labels[v] {
                if let Some(&w) = g.neighbors(v).iter().find(|&&w| labels[w as usize]) {
                    return Err(Violation::at(
                        v,
                        format!("adjacent nodes {v} and {w} both in the set"),
                    ));
                }
            }
        }
        let need = self.threshold(g.n(), g.max_degree());
        let have = set_size(labels);
        if have < need {
            return Err(Violation::global(format!(
                "independent set of size {have} below threshold {need}"
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csmpc_graph::generators;

    #[test]
    fn mis_on_path_valid() {
        let g = generators::path(5);
        assert!(Mis.is_valid(&g, &[true, false, true, false, true]));
    }

    #[test]
    fn mis_rejects_adjacent_pair() {
        let g = generators::path(3);
        let err = Mis.validate(&g, &[true, true, false]).unwrap_err();
        assert!(err.reason.contains("both in the set"));
    }

    #[test]
    fn mis_rejects_non_maximal() {
        let g = generators::path(3);
        let err = Mis.validate(&g, &[false, false, false]).unwrap_err();
        assert!(err.reason.contains("no neighbor inside"));
    }

    #[test]
    fn mis_radius_checkable_consistency() {
        use crate::problem::radius_checkability_violations;
        let g = generators::cycle(6);
        let valid = vec![true, false, true, false, true, false];
        assert!(radius_checkability_violations(&Mis, &g, &valid).is_empty());
        let invalid = vec![true, true, false, false, false, false];
        assert!(radius_checkability_violations(&Mis, &g, &invalid).is_empty());
    }

    #[test]
    fn independence_helper() {
        let g = generators::complete(4);
        assert!(is_independent_set(&g, &[true, false, false, false]));
        assert!(!is_independent_set(&g, &[true, true, false, false]));
    }

    #[test]
    fn large_is_threshold() {
        let p = LargeIndependentSet { c: 0.5 };
        assert_eq!(p.threshold(100, 5), 10);
        assert_eq!(p.threshold(100, 0), 50); // Δ clamped to 1
    }

    #[test]
    fn large_is_accepts_big_enough_set() {
        let g = generators::cycle(10); // Δ = 2
        let p = LargeIndependentSet { c: 0.5 }; // need ≥ 2 nodes
        let mut labels = vec![false; 10];
        labels[0] = true;
        labels[2] = true;
        labels[4] = true;
        assert!(p.is_valid(&g, &labels));
    }

    #[test]
    fn large_is_rejects_small_set() {
        let g = generators::cycle(10);
        let p = LargeIndependentSet { c: 0.5 };
        let mut labels = vec![false; 10];
        labels[0] = true;
        let err = p.validate(&g, &labels).unwrap_err();
        assert!(err.reason.contains("below threshold"));
    }

    #[test]
    fn large_is_rejects_dependent_set() {
        let g = generators::cycle(10);
        let p = LargeIndependentSet { c: 0.1 };
        let mut labels = vec![false; 10];
        labels[0] = true;
        labels[1] = true;
        assert!(!p.is_valid(&g, &labels));
    }

    #[test]
    fn large_is_not_radius_checkable() {
        assert!(LargeIndependentSet::default().check_radius().is_none());
    }
}
