//! Coloring problems: `(Δ+1)`- and `Δ`-vertex coloring, `O(Δ/log Δ)`
//! coloring of triangle-free graphs (Theorem 43), and edge colorings via the
//! line graph (Theorems 40–41).

use crate::matching::EdgeProblem;
use crate::problem::{GraphProblem, Violation};
use csmpc_graph::ops::line_graph;
use csmpc_graph::Graph;

/// Proper vertex coloring with a fixed palette `0..palette`.
/// 1-radius checkable (an LCL).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VertexColoring {
    /// Number of allowed colors.
    pub palette: usize,
}

impl VertexColoring {
    /// The `(Δ+1)`-coloring instance for a concrete graph.
    #[must_use]
    pub fn delta_plus_one(g: &Graph) -> Self {
        VertexColoring {
            palette: g.max_degree() + 1,
        }
    }

    /// The `Δ`-coloring instance (Theorem 42's problem; requires `Δ ≥ 3`
    /// on trees for solvability).
    #[must_use]
    pub fn delta(g: &Graph) -> Self {
        VertexColoring {
            palette: g.max_degree().max(1),
        }
    }
}

impl GraphProblem for VertexColoring {
    type Label = usize;

    fn name(&self) -> &str {
        "vertex-coloring"
    }

    fn validate(&self, g: &Graph, labels: &[usize]) -> Result<(), Violation> {
        if labels.len() != g.n() {
            return Err(Violation::global("label count mismatch"));
        }
        for v in 0..g.n() {
            if labels[v] >= self.palette {
                return Err(Violation::at(
                    v,
                    format!("color {} outside palette of {}", labels[v], self.palette),
                ));
            }
            for &w in g.neighbors(v) {
                if labels[w as usize] == labels[v] {
                    return Err(Violation::at(
                        v,
                        format!("neighbors {v} and {w} share color {}", labels[v]),
                    ));
                }
            }
        }
        Ok(())
    }

    fn check_radius(&self) -> Option<usize> {
        Some(1)
    }

    fn validate_node_ball(&self, ball: &Graph, center: usize, labels: &[usize]) -> bool {
        labels[center] < self.palette
            && !ball
                .neighbors(center)
                .iter()
                .any(|&w| labels[w as usize] == labels[center])
    }
}

/// Proper edge coloring with palette `0..palette`, validated on the original
/// graph; equivalent to vertex coloring of the line graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeColoring {
    /// Number of allowed colors.
    pub palette: usize,
}

impl EdgeColoring {
    /// The `(2Δ−2)`-edge-coloring instance of Theorem 40.
    #[must_use]
    pub fn two_delta_minus_two(g: &Graph) -> Self {
        EdgeColoring {
            palette: (2 * g.max_degree()).saturating_sub(2).max(1),
        }
    }

    /// The `(2Δ−1)`-edge-coloring instance (the greedy bound).
    #[must_use]
    pub fn two_delta_minus_one(g: &Graph) -> Self {
        EdgeColoring {
            palette: (2 * g.max_degree()).saturating_sub(1).max(1),
        }
    }
}

impl EdgeProblem for EdgeColoring {
    type Label = usize;

    fn name(&self) -> &str {
        "edge-coloring"
    }

    fn validate(&self, g: &Graph, edge_labels: &[usize]) -> Result<(), Violation> {
        if edge_labels.len() != g.m() {
            return Err(Violation::global("edge label count mismatch"));
        }
        // Equivalent to vertex coloring on the line graph.
        let (lg, _) = line_graph(g);
        VertexColoring {
            palette: self.palette,
        }
        .validate(&lg, edge_labels)
    }
}

/// `⌈c·Δ/ln Δ⌉`-vertex-coloring of triangle-free graphs (Theorem 43's
/// target palette, parameterized by the constant `c`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TriangleFreeColoring {
    /// The constant multiplier on `Δ/ln Δ`.
    pub c: f64,
}

impl TriangleFreeColoring {
    /// Palette size for maximum degree `delta`.
    #[must_use]
    pub fn palette(&self, delta: usize) -> usize {
        if delta <= 2 {
            return delta + 1;
        }
        ((self.c * delta as f64 / (delta as f64).ln()).ceil() as usize).max(2)
    }

    /// The concrete [`VertexColoring`] instance for a graph.
    #[must_use]
    pub fn instance(&self, g: &Graph) -> VertexColoring {
        VertexColoring {
            palette: self.palette(g.max_degree()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csmpc_graph::generators;

    #[test]
    fn proper_coloring_accepted() {
        let g = generators::cycle(6);
        let p = VertexColoring { palette: 2 };
        assert!(p.is_valid(&g, &[0, 1, 0, 1, 0, 1]));
    }

    #[test]
    fn monochromatic_edge_rejected() {
        let g = generators::path(3);
        let p = VertexColoring { palette: 3 };
        let err = p.validate(&g, &[0, 0, 1]).unwrap_err();
        assert!(err.reason.contains("share color"));
    }

    #[test]
    fn palette_overflow_rejected() {
        let g = generators::path(2);
        let p = VertexColoring { palette: 2 };
        assert!(p.validate(&g, &[0, 5]).is_err());
    }

    #[test]
    fn delta_plus_one_instance() {
        let g = generators::star(4);
        assert_eq!(VertexColoring::delta_plus_one(&g).palette, 5);
    }

    #[test]
    fn edge_coloring_of_path() {
        let g = generators::path(4); // 3 edges, alternating colors suffice
        let p = EdgeColoring { palette: 2 };
        assert!(p.validate(&g, &[0, 1, 0]).is_ok());
        assert!(p.validate(&g, &[0, 0, 1]).is_err());
    }

    #[test]
    fn two_delta_minus_two_palette() {
        let g = generators::star(4); // Δ = 4
        assert_eq!(EdgeColoring::two_delta_minus_two(&g).palette, 6);
    }

    #[test]
    fn star_edge_coloring_needs_delta_colors() {
        let g = generators::star(3);
        let p = EdgeColoring { palette: 3 };
        assert!(p.validate(&g, &[0, 1, 2]).is_ok());
        assert!(p.validate(&g, &[0, 1, 1]).is_err());
    }

    #[test]
    fn triangle_free_palette_shrinks() {
        let t = TriangleFreeColoring { c: 4.0 };
        let big = t.palette(64);
        assert!(big < 64, "palette {big} should be o(Δ)");
        assert!(big >= 2);
    }

    #[test]
    fn coloring_radius_checkable() {
        use crate::problem::radius_checkability_violations;
        let g = generators::cycle(8);
        let p = VertexColoring { palette: 3 };
        let labels = vec![0, 1, 0, 1, 0, 1, 0, 2];
        assert!(radius_checkability_violations(&p, &g, &labels).is_empty());
    }
}
