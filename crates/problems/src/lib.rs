//! # csmpc-problems
//!
//! The graph-problem framework of *"Component Stability in Low-Space
//! Massively Parallel Computation"* (PODC 2021), Section 2.3:
//!
//! * [`problem`] — vertex-labeling problems, `r`-radius checkability
//!   (Definition 8) and per-node validation;
//! * [`replicability`] — `R`-replicability (Definition 9), the `Γ_G`
//!   simulation-graph construction, and an empirical probe that confirms
//!   Lemmas 10–12 and *refutes* replicability of the Section 2.1
//!   counterexample;
//! * concrete problems used across the paper's separations:
//!   [`mis::Mis`], [`mis::LargeIndependentSet`] (Theorem 5),
//!   [`matching::MaximalMatching`] / [`matching::ApproxMaximumMatching`]
//!   (Lemma 12, Theorem 48), [`coloring::VertexColoring`] /
//!   [`coloring::EdgeColoring`] / [`coloring::TriangleFreeColoring`]
//!   (Theorems 40–43), [`sinkless::SinklessOrientation`] (Theorems 38–39),
//!   and [`consecutive_path::ConsecutiveIdPath`] (Section 2.1).
//!
//! Edge-labeling problems implement [`matching::EdgeProblem`] over the
//! original graph and are lifted to vertex problems on the line graph, the
//! reduction the paper uses throughout.
//!
//! ```
//! use csmpc_graph::generators;
//! use csmpc_problems::mis::Mis;
//! use csmpc_problems::problem::GraphProblem;
//!
//! let g = generators::path(5);
//! assert!(Mis.is_valid(&g, &[true, false, true, false, true]));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod coloring;
pub mod consecutive_path;
pub mod matching;
pub mod mis;
pub mod problem;
pub mod replicability;
pub mod ruling_set;
pub mod sinkless;
pub mod vertex_cover;

pub use matching::EdgeProblem;
pub use problem::{GraphProblem, Violation};
