//! Sinkless orientation (Sections 4.2.2, Theorems 38–39): orient every edge
//! so that each node of degree ≥ 3 has at least one outgoing edge.
//!
//! The paper states the problem for graphs of minimum degree ≥ 3 (it is
//! impossible on, e.g., a path); we validate the "no sink" condition at
//! every node of degree ≥ 3, matching the LLL formulation used by the
//! upper-bound algorithms.

use crate::matching::EdgeProblem;
use crate::problem::Violation;
use csmpc_graph::Graph;

/// Orientation of an edge `(u, v)` with `u < v` (the order produced by
/// [`Graph::edges`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeDir {
    /// Oriented `u → v`.
    Forward,
    /// Oriented `v → u`.
    Backward,
}

/// The sinkless-orientation edge problem.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SinklessOrientation;

impl SinklessOrientation {
    /// Out-degree of every node under the given orientation.
    #[must_use]
    pub fn out_degrees(g: &Graph, labels: &[EdgeDir]) -> Vec<usize> {
        let mut out = vec![0usize; g.n()];
        for (i, (u, v)) in g.edges().enumerate() {
            match labels[i] {
                EdgeDir::Forward => out[u] += 1,
                EdgeDir::Backward => out[v] += 1,
            }
        }
        out
    }
}

impl EdgeProblem for SinklessOrientation {
    type Label = EdgeDir;

    fn name(&self) -> &str {
        "sinkless-orientation"
    }

    fn validate(&self, g: &Graph, labels: &[EdgeDir]) -> Result<(), Violation> {
        if labels.len() != g.m() {
            return Err(Violation::global("edge label count mismatch"));
        }
        let out = Self::out_degrees(g, labels);
        for (v, &outdeg) in out.iter().enumerate() {
            if g.degree(v) >= 3 && outdeg == 0 {
                return Err(Violation::at(v, "sink: no outgoing edge"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csmpc_graph::generators;
    use csmpc_graph::rng::{Seed, SplitMix64};

    #[test]
    fn cycle_any_consistent_direction_works() {
        // Degree 2 everywhere: the condition is vacuous.
        let g = generators::cycle(5);
        let labels = vec![EdgeDir::Forward; g.m()];
        assert!(SinklessOrientation.validate(&g, &labels).is_ok());
    }

    #[test]
    fn star_center_needs_one_outgoing() {
        // K_{1,3}: center has degree 3 and must have an outgoing edge.
        let g = generators::star(3);
        // Edges are (0,i): all Backward = all towards center = center is
        // a *source* at leaves' expense? Backward means v -> u = leaf ->
        // center, so center has out-degree 0 -> sink.
        let all_in = vec![EdgeDir::Backward; g.m()];
        let err = SinklessOrientation.validate(&g, &all_in).unwrap_err();
        assert_eq!(err.node, Some(0));
        let mut one_out = all_in;
        one_out[0] = EdgeDir::Forward;
        assert!(SinklessOrientation.validate(&g, &one_out).is_ok());
    }

    #[test]
    fn out_degrees_sum_to_m() {
        let g = generators::random_regular(12, 4, Seed(1));
        let mut rng = SplitMix64::new(Seed(2));
        let labels: Vec<EdgeDir> = (0..g.m())
            .map(|_| {
                if rng.bit() {
                    EdgeDir::Forward
                } else {
                    EdgeDir::Backward
                }
            })
            .collect();
        let out = SinklessOrientation::out_degrees(&g, &labels);
        assert_eq!(out.iter().sum::<usize>(), g.m());
    }

    #[test]
    fn regular_graph_random_orientation_often_valid() {
        // On a 4-regular graph a uniformly random orientation leaves each
        // node a sink with probability 2^-4; just check the validator runs
        // and that *some* seed yields a valid orientation.
        let g = generators::random_regular(16, 4, Seed(3));
        let mut found = false;
        for s in 0..50 {
            let mut rng = SplitMix64::new(Seed(s));
            let labels: Vec<EdgeDir> = (0..g.m())
                .map(|_| {
                    if rng.bit() {
                        EdgeDir::Forward
                    } else {
                        EdgeDir::Backward
                    }
                })
                .collect();
            if SinklessOrientation.validate(&g, &labels).is_ok() {
                found = true;
                break;
            }
        }
        assert!(found, "no valid random orientation in 50 tries");
    }
}
