//! Matching problems: maximal matching, `Ω(1)`-approximate maximum
//! matching, and the edge-problem ↔ line-graph-vertex-problem adapters of
//! Section 2.3.

use crate::problem::{GraphProblem, Violation};
use csmpc_graph::ops::line_graph;
use csmpc_graph::Graph;

/// A problem whose outputs label the *edges* of the input graph, in
/// `g.edges()` order. The paper reduces such problems to vertex labeling on
/// the line graph; this trait keeps the natural statement available for
/// validation.
pub trait EdgeProblem {
    /// Output label per edge.
    type Label: Clone + PartialEq + std::fmt::Debug;

    /// Problem name.
    fn name(&self) -> &str;

    /// Validates edge labels against the original graph.
    ///
    /// # Errors
    ///
    /// The first [`Violation`] found (node indices refer to `g`).
    fn validate(&self, g: &Graph, edge_labels: &[Self::Label]) -> Result<(), Violation>;
}

/// Is `in_matching` (per edge) a matching — no two chosen edges sharing an
/// endpoint?
#[must_use]
pub fn is_matching(g: &Graph, in_matching: &[bool]) -> bool {
    let mut used = vec![false; g.n()];
    for (i, (u, v)) in g.edges().enumerate() {
        if in_matching[i] {
            if used[u] || used[v] {
                return false;
            }
            used[u] = true;
            used[v] = true;
        }
    }
    true
}

/// Greedy maximal matching (processing edges in order) — a ½-approximation
/// witness used by the approximate validator.
#[must_use]
pub fn greedy_maximal_matching(g: &Graph) -> Vec<bool> {
    let mut used = vec![false; g.n()];
    g.edges()
        .map(|(u, v)| {
            if !used[u] && !used[v] {
                used[u] = true;
                used[v] = true;
                true
            } else {
                false
            }
        })
        .collect()
}

/// Exact maximum matching size on a **forest** via leaf-stripping DP.
///
/// # Panics
///
/// Panics if `g` contains a cycle.
#[must_use]
pub fn max_matching_forest(g: &Graph) -> usize {
    assert!(
        g.m() + g.component_count() == g.n(),
        "max_matching_forest requires an acyclic graph"
    );
    // Greedy from leaves is optimal on forests.
    let mut deg: Vec<usize> = (0..g.n()).map(|v| g.degree(v)).collect();
    let mut removed = vec![false; g.n()];
    let mut matched = vec![false; g.n()];
    let mut queue: std::collections::VecDeque<usize> =
        (0..g.n()).filter(|&v| deg[v] == 1).collect();
    let mut size = 0usize;
    while let Some(v) = queue.pop_front() {
        if removed[v] || matched[v] {
            continue;
        }
        // v is a leaf: match it with its unique live neighbor if possible.
        let parent = g
            .neighbors(v)
            .iter()
            .map(|&w| w as usize)
            .find(|&w| !removed[w]);
        removed[v] = true;
        let Some(p) = parent else { continue };
        if !matched[p] {
            matched[v] = true;
            matched[p] = true;
            size += 1;
            removed[p] = true;
            for &w in g.neighbors(p) {
                let w = w as usize;
                if !removed[w] {
                    deg[w] -= 1;
                    if deg[w] <= 1 {
                        queue.push_back(w);
                    }
                }
            }
        } else {
            deg[p] -= 1;
            if deg[p] == 1 {
                queue.push_back(p);
            }
        }
    }
    size
}

/// Maximal matching as an edge problem: a matching such that every edge has
/// a matched endpoint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaximalMatching;

impl EdgeProblem for MaximalMatching {
    type Label = bool;

    fn name(&self) -> &str {
        "maximal-matching"
    }

    fn validate(&self, g: &Graph, edge_labels: &[bool]) -> Result<(), Violation> {
        if edge_labels.len() != g.m() {
            return Err(Violation::global("edge label count mismatch"));
        }
        if !is_matching(g, edge_labels) {
            return Err(Violation::global("chosen edges share an endpoint"));
        }
        let mut covered = vec![false; g.n()];
        for (i, (u, v)) in g.edges().enumerate() {
            if edge_labels[i] {
                covered[u] = true;
                covered[v] = true;
            }
        }
        for (i, (u, v)) in g.edges().enumerate() {
            if !edge_labels[i] && !covered[u] && !covered[v] {
                return Err(Violation::at(
                    u,
                    format!("edge ({u},{v}) could be added: matching not maximal"),
                ));
            }
        }
        Ok(())
    }
}

/// `Ω(1)`-approximate maximum matching (Lemma 12): a matching of size at
/// least `ratio ×` the maximum. On forests the maximum is computed exactly;
/// on general graphs the bound `max ≤ 2 · |any maximal matching|` is used,
/// so the check is `|M| ≥ ratio · bound` with a documented 2-factor slack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproxMaximumMatching {
    /// Required approximation ratio in `(0, 1]`.
    pub ratio: f64,
}

impl EdgeProblem for ApproxMaximumMatching {
    type Label = bool;

    fn name(&self) -> &str {
        "approx-maximum-matching"
    }

    fn validate(&self, g: &Graph, edge_labels: &[bool]) -> Result<(), Violation> {
        if edge_labels.len() != g.m() {
            return Err(Violation::global("edge label count mismatch"));
        }
        if !is_matching(g, edge_labels) {
            return Err(Violation::global("chosen edges share an endpoint"));
        }
        let have = edge_labels.iter().filter(|&&b| b).count();
        let optimum_bound = if g.m() + g.component_count() == g.n() {
            max_matching_forest(g)
        } else {
            2 * greedy_maximal_matching(g).iter().filter(|&&b| b).count()
        };
        let need = (self.ratio * optimum_bound as f64).floor() as usize;
        if have < need {
            return Err(Violation::global(format!(
                "matching size {have} below {need} (= {} × optimum bound {optimum_bound})",
                self.ratio
            )));
        }
        Ok(())
    }
}

/// Lifts an edge labeling of `g` to a vertex labeling of its line graph —
/// the direction the paper's framework uses.
#[must_use]
pub fn edge_labels_to_line_graph<L: Clone>(labels: &[L]) -> Vec<L> {
    labels.to_vec() // line-graph node order = g.edges() order
}

/// The vertex problem "MIS on the line graph", whose valid outputs are
/// exactly the maximal matchings of the original graph.
#[must_use]
pub fn line_graph_of(g: &Graph) -> (Graph, Vec<(usize, usize)>) {
    line_graph(g)
}

/// Cross-validation helper: a labeling is a maximal matching of `g` iff it
/// is an MIS of `L(g)` — the equivalence the paper's reduction rests on.
#[must_use]
pub fn matching_mis_equivalence(g: &Graph, edge_labels: &[bool]) -> bool {
    let (lg, _) = line_graph(g);
    let mis_valid = crate::mis::Mis.is_valid(&lg, edge_labels);
    let mm_valid = MaximalMatching.validate(g, edge_labels).is_ok();
    mis_valid == mm_valid
}

#[cfg(test)]
mod tests {
    use super::*;
    use csmpc_graph::generators;
    use csmpc_graph::rng::Seed;

    #[test]
    fn greedy_is_maximal() {
        let g = generators::random_gnp(20, 0.3, Seed(1));
        let m = greedy_maximal_matching(&g);
        assert!(MaximalMatching.validate(&g, &m).is_ok());
    }

    #[test]
    fn matching_detects_conflict() {
        let g = generators::path(3); // edges (0,1), (1,2)
        assert!(!is_matching(&g, &[true, true]));
        assert!(is_matching(&g, &[true, false]));
    }

    #[test]
    fn maximal_matching_rejects_extendable() {
        let g = generators::path(5);
        // Match only edge (0,1): edge (2,3) could still be added.
        let labels = vec![true, false, false, false];
        assert!(MaximalMatching.validate(&g, &labels).is_err());
    }

    #[test]
    fn forest_max_matching_path() {
        assert_eq!(max_matching_forest(&generators::path(2)), 1);
        assert_eq!(max_matching_forest(&generators::path(5)), 2);
        assert_eq!(max_matching_forest(&generators::path(6)), 3);
        assert_eq!(max_matching_forest(&generators::star(5)), 1);
    }

    #[test]
    fn forest_max_matching_random_trees() {
        for s in 0..5 {
            let g = generators::random_tree(30, Seed(s));
            let opt = max_matching_forest(&g);
            let greedy = greedy_maximal_matching(&g).iter().filter(|&&b| b).count();
            assert!(greedy <= opt, "greedy {greedy} exceeds optimum {opt}");
            assert!(2 * greedy >= opt, "greedy below half of optimum");
        }
    }

    #[test]
    fn approx_matching_accepts_greedy_on_forest() {
        let g = generators::random_tree(40, Seed(9));
        let m = greedy_maximal_matching(&g);
        let p = ApproxMaximumMatching { ratio: 0.5 };
        assert!(p.validate(&g, &m).is_ok());
    }

    #[test]
    fn approx_matching_rejects_empty_on_path() {
        let g = generators::path(6);
        let p = ApproxMaximumMatching { ratio: 0.5 };
        assert!(p.validate(&g, &vec![false; g.m()]).is_err());
    }

    #[test]
    fn equivalence_with_line_graph_mis() {
        for s in 0..5 {
            let g = generators::random_gnp(10, 0.4, Seed(s));
            if g.m() == 0 {
                continue;
            }
            let good = greedy_maximal_matching(&g);
            assert!(matching_mis_equivalence(&g, &good));
            let mut bad = good.clone();
            let flip = (s as usize) % bad.len();
            bad[flip] = !bad[flip];
            assert!(matching_mis_equivalence(&g, &bad));
        }
    }

    #[test]
    #[should_panic(expected = "acyclic")]
    fn forest_dp_rejects_cycles() {
        let _ = max_matching_forest(&generators::cycle(4));
    }
}
