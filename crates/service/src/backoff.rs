//! Job-level retry backoff: the queue-side mirror of
//! [`csmpc_mpc::RecoveryPolicy::RestartWithBackoff`].
//!
//! In-run recovery backs a *machine* off for `base << retry` ledger
//! rounds (saturating); this module applies the same shape to whole
//! *jobs* between attempts, in virtual scheduler ticks. The schedule is
//! a pure function of `(seed, attempt)`: delays never consult the clock,
//! the thread, or any shared state, so the retry trajectory of a job is
//! identical no matter how the worker pool interleaves it.

use csmpc_graph::rng::{Seed, SplitMix64};

/// Saturating exponential backoff with deterministic seeded jitter.
///
/// Delay for retry `k ≥ 1` is `min(cap, base·2^(k-1) + jitter)` where
/// `jitter ∈ [0, base·2^(k-1)/4]` is drawn from a stream derived from
/// `(seed, k)`. Retry `0` (the first attempt) waits nothing.
///
/// Three properties hold by construction (and are property-tested):
///
/// * **Monotone non-decreasing**: pre-cap the raw delay doubles while
///   jitter adds at most a quarter, so `d(k) ≤ 1.25·raw(k) < 2·raw(k) ≤
///   raw(k+1) ≤ d(k+1)`; at the cap every delay is exactly `cap`.
/// * **Saturating**: shifts clamp at `u64::MAX` before the `cap` min, so
///   no retry count overflows.
/// * **Pure**: the same `(seed, retry)` always yields the same delay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// First-retry delay in virtual scheduler ticks (floored to 1).
    pub base: u64,
    /// Saturation ceiling (floored to `base`).
    pub cap: u64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy { base: 2, cap: 64 }
    }
}

impl BackoffPolicy {
    /// The delay (in virtual ticks) before retry number `retry`;
    /// `retry == 0` is the initial attempt and waits nothing.
    #[must_use]
    pub fn delay(&self, seed: Seed, retry: u32) -> u64 {
        if retry == 0 {
            return 0;
        }
        let base = self.base.max(1);
        let cap = self.cap.max(base);
        let shift = retry - 1;
        let raw = if shift >= base.leading_zeros() {
            u64::MAX
        } else {
            base << shift
        };
        if raw >= cap {
            return cap;
        }
        let mut rng = SplitMix64::new(seed.derive(0xbac0_ff00 ^ u64::from(retry)));
        let jitter = rng.range(0, raw / 4 + 1);
        raw.saturating_add(jitter).min(cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_attempt_waits_nothing() {
        let p = BackoffPolicy::default();
        assert_eq!(p.delay(Seed(7), 0), 0);
    }

    #[test]
    fn doubles_then_saturates() {
        let p = BackoffPolicy { base: 4, cap: 40 };
        let s = Seed(11);
        let d1 = p.delay(s, 1);
        let d2 = p.delay(s, 2);
        assert!((4..=5).contains(&d1), "{d1}");
        assert!((8..=10).contains(&d2), "{d2}");
        // Far past the cap — including shift counts that would overflow.
        assert_eq!(p.delay(s, 20), 40);
        assert_eq!(p.delay(s, u32::MAX), 40);
    }

    #[test]
    fn pure_in_seed_and_retry() {
        let p = BackoffPolicy::default();
        for retry in 0..10 {
            assert_eq!(p.delay(Seed(3), retry), p.delay(Seed(3), retry));
        }
        // Different seeds may jitter differently pre-cap.
        let p = BackoffPolicy {
            base: 64,
            cap: 1 << 40,
        };
        let spread = (0..64u64).any(|s| p.delay(Seed(s), 5) != p.delay(Seed(0), 5));
        assert!(spread, "jitter should depend on the seed");
    }
}
