//! The job scheduler: a worker pool multiplexing seeded MPC runs, with
//! retry, quarantine, fairness, and shedding at the queue boundary.
//!
//! ## Determinism under concurrency
//!
//! The scheduler promises *bit-identical per-job results* for the same
//! submission sequence, no matter how many workers run or how they
//! interleave. The design makes that structural rather than lucky:
//!
//! * An attempt's result is a **pure function** of
//!   `(spec, attempt, shed)` — [`execute_attempt`] touches no mutable
//!   shared state (the graph store and CSR cache hand out immutable
//!   `Arc`s whose contents are content-keyed).
//! * Admission and shedding are decided **at submission time, in
//!   submission order**, from booked reservations only.
//! * Retry pacing runs on **virtual ticks**, not wall clock: the clock
//!   advances once per completed attempt and fast-forwards when every
//!   queued job is backing off, so backoff shapes *ordering* but never
//!   results, and an idle queue can never wedge.
//! * Wall-clock time is recorded per job for observability
//!   ([`JobOutcome::wall_ms`]) but — like [`csmpc_mpc::Stats`] phase
//!   timings — is excluded from [`ServiceReport::fingerprint`].

use crate::admission::{AdmissionController, AdmissionDecision};
use crate::graph_store::{self, GraphStore, SharedGraph};
use crate::job::{labels_digest, run_job, JobId, JobSpec, Priority};
use crate::journal::{CrashPlan, Journal, JournalRecord};
use csmpc_mpc::{
    run_supervised, Cluster, FaultPlan, MpcConfig, MpcError, ParallelismMode, RecoveryPolicy,
    Stats, SupervisedOutcome, SupervisorConfig,
};
use std::cmp::Reverse;
use std::collections::BTreeMap;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// Service-wide configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Aggregate admission capacity in words (sum of per-job `M × S`).
    pub capacity_words: usize,
    /// Fraction of capacity past which low-priority jobs are shed to
    /// supervised partial-output mode.
    pub shed_fraction: f64,
    /// Engine parallelism inside each job's cluster. Either mode is
    /// bit-identical per seed; this knob only trades wall-clock.
    pub mode: ParallelismMode,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            capacity_words: 1 << 22,
            shed_fraction: 0.75,
            mode: ParallelismMode::default(),
        }
    }
}

/// Terminal state of one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Full output produced.
    Completed,
    /// Supervised partial output: healthy components labeled, tainted
    /// ones `None` (shed jobs, or salvaged runs).
    Degraded,
    /// Refused at admission; never ran.
    Rejected,
    /// Exhausted its attempt budget; parked with its error history.
    Quarantined,
}

impl JobState {
    fn discriminant(self) -> u64 {
        match self {
            JobState::Completed => 0,
            JobState::Degraded => 1,
            JobState::Rejected => 2,
            JobState::Quarantined => 3,
        }
    }
}

/// The terminal record of one submitted job.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Submission index.
    pub id: JobId,
    /// Owning tenant.
    pub tenant: String,
    /// Priority it was scheduled at.
    pub priority: Priority,
    /// Terminal state.
    pub state: JobState,
    /// `true` when the job ran on the shedding rung (supervised mode).
    pub shed: bool,
    /// Attempts actually executed (0 for rejected jobs).
    pub attempts: u32,
    /// Output digest ([`labels_digest`]); 0 when the job never produced
    /// output (rejected/quarantined).
    pub digest: u64,
    /// The final attempt's ledger, when one ran.
    pub stats: Option<Stats>,
    /// Why admission refused (rejected jobs only).
    pub reject_reason: Option<String>,
    /// Error history across failed attempts (quarantined jobs carry the
    /// full trail; completed-after-retry jobs the earlier failures).
    pub errors: Vec<String>,
    /// Wall-clock milliseconds from first dispatch to terminal state.
    /// **Observability only** — excluded from the determinism
    /// fingerprint, like [`Stats`] phase timings.
    pub wall_ms: f64,
}

/// Aggregate service counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Jobs submitted.
    pub submitted: u64,
    /// Jobs admitted (including shed admissions).
    pub admitted: u64,
    /// Jobs refused at admission.
    pub rejected: u64,
    /// Jobs admitted on the shedding rung.
    pub shed: u64,
    /// Jobs finishing [`JobState::Completed`].
    pub completed: u64,
    /// Jobs finishing [`JobState::Degraded`].
    pub degraded: u64,
    /// Jobs finishing [`JobState::Quarantined`].
    pub quarantined: u64,
    /// Job-level retries executed.
    pub retries: u64,
    /// Virtual backoff ticks charged by those retries.
    pub backoff_ticks: u64,
    /// Failed attempts whose error was a tripped job deadline.
    pub deadline_failures: u64,
}

/// Everything `run` hands back: per-job outcomes in submission order
/// plus the aggregate counters.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// One outcome per submitted job, indexed by [`JobId`].
    pub outcomes: Vec<JobOutcome>,
    /// Aggregate counters.
    pub counters: Counters,
}

impl ServiceReport {
    /// FNV-1a over every *deterministic* per-job field — id, state,
    /// shed flag, attempt count, output digest, and the model
    /// observables of the final ledger. Two runs of the same batch must
    /// produce equal fingerprints regardless of worker interleaving;
    /// `wall_ms` is deliberately excluded.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |word: u64| {
            for b in word.to_le_bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for o in &self.outcomes {
            mix(o.id.0);
            mix(o.state.discriminant());
            mix(u64::from(o.shed));
            mix(u64::from(o.attempts));
            mix(o.digest);
            if let Some(s) = &o.stats {
                mix(s.rounds as u64);
                mix(s.total_words);
                mix(s.max_round_words as u64);
                mix(s.max_storage_words as u64);
                mix(s.recovery_rounds as u64);
                mix(s.recovery_words);
                mix(s.corrupted_detected);
            } else {
                mix(u64::MAX);
            }
        }
        h
    }
}

/// One queued (admitted, not yet terminal) job.
pub(crate) struct QueuedJob {
    pub(crate) id: JobId,
    pub(crate) spec: JobSpec,
    pub(crate) shed: bool,
    pub(crate) footprint: usize,
    /// Attempt about to run, 1-based.
    pub(crate) attempt: u32,
    /// Virtual tick before which this job may not dispatch (backoff).
    pub(crate) not_before: u64,
    /// Submission sequence — the FIFO tiebreak.
    pub(crate) seq: u64,
    pub(crate) errors: Vec<String>,
    pub(crate) started: Option<Instant>,
}

pub(crate) struct SchedState {
    pub(crate) queue: Vec<QueuedJob>,
    pub(crate) running: usize,
    /// Virtual time: one tick per completed attempt, fast-forwarded
    /// when everything queued is backing off.
    pub(crate) clock: u64,
    /// Dispatch counter feeding tenant fairness.
    pub(crate) dispatches: u64,
    /// Last dispatch sequence per tenant — the round-robin key.
    pub(crate) last_served: BTreeMap<String, u64>,
    pub(crate) outcomes: Vec<Option<JobOutcome>>,
    pub(crate) counters: Counters,
    pub(crate) admission: AdmissionController,
    /// Write-ahead journal, when durability is armed: every lifecycle
    /// transition is appended *before* it is applied in memory.
    pub(crate) journal: Option<Journal>,
    /// `true` once an armed [`CrashPlan`] has fired: the simulated
    /// process is dead, workers drain out, and only
    /// [`JobService::recover`](crate::recovery) can continue the batch.
    pub(crate) crashed: bool,
}

/// The job service: submit a batch, then [`run`](JobService::run) it.
pub struct JobService {
    cfg: ServiceConfig,
    store: &'static GraphStore,
    state: Mutex<SchedState>,
    cvar: Condvar,
}

/// The per-job cluster configuration derived from its spec.
pub(crate) fn job_mpc_config(spec: &JobSpec, mode: ParallelismMode) -> MpcConfig {
    MpcConfig {
        min_space: spec.min_space,
        parallelism: mode,
        ..MpcConfig::with_phi(spec.phi)
    }
}

struct AttemptSuccess {
    labels: Vec<Option<u64>>,
    stats: Stats,
    degraded: bool,
}

/// Runs one attempt of one job — a pure function of
/// `(spec, shared, attempt, shed, mode)`. All communication below is
/// charged through the accounted primitives reached by [`run_job`].
///
/// Full-service jobs run directly (faults armed when the spec carries a
/// plan) and surface errors to the retry ladder. Shed jobs run under
/// [`run_supervised`]: injected failures degrade to per-component
/// partial output instead of failing the attempt.
fn execute_attempt(
    spec: &JobSpec,
    shared: &SharedGraph,
    attempt: u32,
    shed: bool,
    mode: ParallelismMode,
) -> Result<AttemptSuccess, MpcError> {
    let g = &shared.graph;
    let mut template = Cluster::new(job_mpc_config(spec, mode), g.n(), shared.words, spec.seed);
    // The in-run recovery budget escalates by one per job-level retry:
    // the fault plan replays identically, so a widened budget is the
    // deterministic path from "attempt 1 exhausted retries" to
    // "attempt 2 completes".
    let in_run_retries = spec.recovery_retries + (attempt as usize).saturating_sub(1);
    let policy = RecoveryPolicy::restart_with_backoff(in_run_retries, 1);
    if let Some(d) = spec.deadline_rounds {
        template.arm_job_deadline(d);
    }
    if shed {
        let plan = match &spec.faults {
            Some(f) => f.plan_for(template.num_machines()),
            None => FaultPlan::quiet(spec.seed),
        };
        let run = run_supervised(
            g,
            &template,
            &plan,
            policy,
            SupervisorConfig::default(),
            |g, cl| run_job(&spec.workload, g, cl),
        )?;
        let stats = run.stats.clone();
        match run.outcome {
            SupervisedOutcome::Complete(labels) => Ok(AttemptSuccess {
                labels: labels.into_iter().map(Some).collect(),
                stats,
                degraded: false,
            }),
            SupervisedOutcome::Degraded(partial) => Ok(AttemptSuccess {
                labels: partial.labels,
                stats,
                degraded: true,
            }),
        }
    } else {
        let mut cluster = template;
        if let Some(f) = &spec.faults {
            cluster.arm_faults(f.plan_for(cluster.num_machines()), policy);
            cluster.supervise(SupervisorConfig::default());
        }
        let labels = run_job(&spec.workload, g, &mut cluster)?;
        Ok(AttemptSuccess {
            labels: labels.into_iter().map(Some).collect(),
            stats: cluster.stats().clone(),
            degraded: false,
        })
    }
}

impl JobService {
    /// A service over the process-wide graph store.
    #[must_use]
    pub fn new(cfg: ServiceConfig) -> Self {
        Self::with_optional_journal(cfg, None)
    }

    /// A service whose every lifecycle transition is journaled to
    /// `journal` before it is applied — the crash-consistent mode.
    /// Recover a crashed batch with [`JobService::recover`].
    ///
    /// [`JobService::recover`]: crate::recovery
    #[must_use]
    pub fn with_journal(cfg: ServiceConfig, journal: Journal) -> Self {
        Self::with_optional_journal(cfg, Some(journal))
    }

    fn with_optional_journal(cfg: ServiceConfig, journal: Option<Journal>) -> Self {
        let admission = AdmissionController::new(cfg.capacity_words, cfg.shed_fraction);
        JobService {
            cfg,
            store: graph_store::global(),
            state: Mutex::new(SchedState {
                queue: Vec::new(),
                running: 0,
                clock: 0,
                dispatches: 0,
                last_served: BTreeMap::new(),
                outcomes: Vec::new(),
                counters: Counters::default(),
                admission,
                journal,
                crashed: false,
            }),
            cvar: Condvar::new(),
        }
    }

    /// Rebuilds a service around a state replayed from a journal
    /// (the [`crate::recovery`] constructor).
    pub(crate) fn from_replayed(cfg: ServiceConfig, state: SchedState) -> Self {
        JobService {
            cfg,
            store: graph_store::global(),
            state: Mutex::new(state),
            cvar: Condvar::new(),
        }
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// Arms a crash plan on the journal (no-op without one). Counting
    /// starts immediately; when the plan fires, the service behaves like
    /// a killed process: workers drain, nothing further persists, and
    /// [`run_recoverable`](JobService::run_recoverable) returns `None`.
    pub fn arm_crash(&self, plan: CrashPlan) {
        let mut state = self.state.lock().expect("service state poisoned");
        if let Some(j) = state.journal.as_mut() {
            j.arm_crash(plan);
        }
    }

    /// `true` once an armed crash plan has fired.
    #[must_use]
    pub fn crashed(&self) -> bool {
        self.state.lock().expect("service state poisoned").crashed
    }

    /// Submissions recorded so far (the dense [`JobId`] space). After a
    /// crash + [`recover`](crate::recovery), this tells a client how far
    /// the original batch persisted — everything from this index on was
    /// lost in flight and needs resubmitting.
    #[must_use]
    pub fn submitted_jobs(&self) -> usize {
        self.state
            .lock()
            .expect("service state poisoned")
            .outcomes
            .len()
    }

    /// Appends `rec`, returning `false` (and marking the service
    /// crashed) when the journal's armed crash plan fires. Real I/O
    /// errors also read as a crash: the record did not persist, so
    /// continuing would desynchronize the log from memory.
    fn journal_append(state: &mut SchedState, rec: &JournalRecord) -> bool {
        match state.journal.as_mut() {
            None => true,
            Some(j) => match j.append(rec) {
                Ok(()) => true,
                Err(_) => {
                    state.crashed = true;
                    false
                }
            },
        }
    }

    /// Submits one job, deciding admission immediately (in submission
    /// order): rejected jobs get a terminal outcome with the reason;
    /// admitted jobs are queued — possibly on the shedding rung.
    pub fn submit(&self, spec: JobSpec) -> JobId {
        let shared = self.store.get(&spec.graph);
        let mcfg = job_mpc_config(&spec, self.cfg.mode);
        let n = shared.graph.n();
        let footprint = mcfg.machines_for(n, shared.words) * mcfg.local_space(n);
        let mut state = self.state.lock().expect("service state poisoned");
        let id = JobId(state.outcomes.len() as u64);
        let seq = id.0;
        // Write-ahead: the submission persists before any in-memory
        // effect. After a crash nothing mutates — the id is still handed
        // back so callers index consistently, but the dead process
        // records nothing, exactly like a kill between syscalls.
        if state.crashed {
            return id;
        }
        if !Self::journal_append(
            &mut state,
            &JournalRecord::Submitted {
                id,
                spec: spec.clone(),
            },
        ) {
            return id;
        }
        state.counters.submitted += 1;
        let decision = state.admission.decide(footprint, spec.priority);
        let decision_rec = match &decision {
            AdmissionDecision::Reject { reason } => JournalRecord::Rejected {
                id,
                reason: reason.clone(),
            },
            AdmissionDecision::AdmitShed => JournalRecord::Shed {
                id,
                footprint: footprint as u64,
            },
            AdmissionDecision::Admit => JournalRecord::Admitted {
                id,
                footprint: footprint as u64,
            },
        };
        if !Self::journal_append(&mut state, &decision_rec) {
            // The submission persisted but its decision did not: the
            // booking must not survive in memory either (replay will
            // re-derive the decision from the log).
            if !matches!(decision, AdmissionDecision::Reject { .. }) {
                state.admission.release(footprint);
            }
            return id;
        }
        match decision {
            AdmissionDecision::Reject { reason } => {
                state.counters.rejected += 1;
                state.outcomes.push(Some(JobOutcome {
                    id,
                    tenant: spec.tenant.clone(),
                    priority: spec.priority,
                    state: JobState::Rejected,
                    shed: false,
                    attempts: 0,
                    digest: 0,
                    stats: None,
                    reject_reason: Some(reason),
                    errors: Vec::new(),
                    wall_ms: 0.0,
                }));
            }
            decision => {
                let shed = matches!(decision, AdmissionDecision::AdmitShed);
                state.counters.admitted += 1;
                if shed {
                    state.counters.shed += 1;
                }
                state.outcomes.push(None);
                state.queue.push(QueuedJob {
                    id,
                    spec,
                    shed,
                    footprint,
                    attempt: 1,
                    not_before: 0,
                    seq,
                    errors: Vec::new(),
                    started: None,
                });
            }
        }
        id
    }

    /// Drains the queue with the configured worker pool and returns the
    /// batch report. Every submitted job reaches a terminal state —
    /// retries re-queue, quarantine parks, and the virtual clock
    /// fast-forwards through backoff gaps, so the queue cannot wedge.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panicked (poisoning the state), if a
    /// job failed to reach a terminal state — both are service bugs, not
    /// load conditions — or if an armed [`CrashPlan`] fired (use
    /// [`run_recoverable`](JobService::run_recoverable) when crashes are
    /// expected).
    #[must_use]
    pub fn run(&self) -> ServiceReport {
        self.run_recoverable()
            .expect("service crashed mid-run: recover the batch with JobService::recover")
    }

    /// Like [`run`](JobService::run), but `None` when an armed
    /// [`CrashPlan`] fired mid-run: the simulated process died, the
    /// journal holds everything that persisted, and
    /// [`JobService::recover`](crate::recovery) continues the batch.
    #[must_use]
    pub fn run_recoverable(&self) -> Option<ServiceReport> {
        let workers = self.cfg.workers.max(1);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| self.worker_loop());
            }
        });
        let mut state = self.state.lock().expect("service state poisoned");
        if state.crashed {
            return None;
        }
        let outcomes: Vec<JobOutcome> = state
            .outcomes
            .drain(..)
            .enumerate()
            .map(|(i, o)| o.unwrap_or_else(|| panic!("job {i} wedged without a terminal state")))
            .collect();
        let counters = state.counters;
        state.counters = Counters::default();
        Some(ServiceReport { outcomes, counters })
    }

    /// Convenience: submit a whole batch, then run it.
    #[must_use]
    pub fn run_batch(&self, specs: Vec<JobSpec>) -> ServiceReport {
        for spec in specs {
            let _ = self.submit(spec);
        }
        self.run()
    }

    /// Picks the next dispatchable queue index: eligible (`not_before`
    /// reached), highest priority first, then least-recently-served
    /// tenant, then FIFO.
    fn pick(state: &SchedState) -> Option<usize> {
        state
            .queue
            .iter()
            .enumerate()
            .filter(|(_, q)| q.not_before <= state.clock)
            .min_by_key(|(_, q)| {
                let served = state.last_served.get(&q.spec.tenant).copied().unwrap_or(0);
                (Reverse(q.spec.priority), served, q.seq)
            })
            .map(|(i, _)| i)
    }

    fn worker_loop(&self) {
        loop {
            let mut state = self.state.lock().expect("service state poisoned");
            let job = loop {
                if state.crashed {
                    break None;
                }
                if let Some(idx) = Self::pick(&state) {
                    // Write-ahead: the dispatch persists before any of
                    // its in-memory effects (fairness stamp, dequeue).
                    let (id, attempt) = (state.queue[idx].id, state.queue[idx].attempt);
                    if !Self::journal_append(
                        &mut state,
                        &JournalRecord::AttemptStarted { id, attempt },
                    ) {
                        break None;
                    }
                    let mut job = state.queue.remove(idx);
                    state.running += 1;
                    state.dispatches += 1;
                    let stamp = state.dispatches;
                    state.last_served.insert(job.spec.tenant.clone(), stamp);
                    if job.started.is_none() {
                        job.started = Some(Instant::now());
                    }
                    break Some(job);
                }
                if state.queue.is_empty() && state.running == 0 {
                    break None;
                }
                if state.running == 0 {
                    // Everything queued is backing off and nothing is
                    // running to advance time: fast-forward the virtual
                    // clock to the earliest eligibility. This is the
                    // no-wedge guarantee.
                    let next = state
                        .queue
                        .iter()
                        .map(|q| q.not_before)
                        .min()
                        .expect("non-empty queue");
                    state.clock = state.clock.max(next);
                    continue;
                }
                state = self.cvar.wait(state).expect("service state poisoned");
            };
            let Some(mut job) = job else {
                // Drained: wake any peers still parked on the condvar so
                // they observe the terminal state and exit too.
                self.cvar.notify_all();
                return;
            };
            drop(state);

            let shared = self.store.get(&job.spec.graph);
            let result = execute_attempt(&job.spec, &shared, job.attempt, job.shed, self.cfg.mode);

            let mut state = self.state.lock().expect("service state poisoned");
            state.running -= 1;
            if state.crashed {
                // The process died while this attempt was in flight: its
                // result evaporates. Replay will re-run the attempt —
                // bit-identically, because execution is pure in
                // (spec, attempt, shed, mode).
                self.cvar.notify_all();
                continue;
            }
            match result {
                Ok(success) => {
                    // Write-ahead: Completed *is* the finish record for a
                    // successful attempt, so a success can never be
                    // half-persisted.
                    let digest = labels_digest(&success.labels);
                    if !Self::journal_append(
                        &mut state,
                        &JournalRecord::Completed {
                            id: job.id,
                            attempts: job.attempt,
                            shed: job.shed,
                            degraded: success.degraded,
                            digest,
                            stats: success.stats.clone(),
                        },
                    ) {
                        self.cvar.notify_all();
                        continue;
                    }
                    state.clock += 1;
                    let terminal = if success.degraded {
                        state.counters.degraded += 1;
                        JobState::Degraded
                    } else {
                        state.counters.completed += 1;
                        JobState::Completed
                    };
                    state.admission.release(job.footprint);
                    let wall_ms = job
                        .started
                        .map(|t| t.elapsed().as_secs_f64() * 1e3)
                        .unwrap_or(0.0);
                    state.outcomes[job.id.0 as usize] = Some(JobOutcome {
                        id: job.id,
                        tenant: job.spec.tenant.clone(),
                        priority: job.spec.priority,
                        state: terminal,
                        shed: job.shed,
                        attempts: job.attempt,
                        digest,
                        stats: Some(success.stats),
                        reject_reason: None,
                        errors: job.errors,
                        wall_ms,
                    });
                }
                Err(e) => {
                    let deadline = matches!(e, MpcError::RoundLimitExceeded { .. });
                    let error = format!("attempt {}: {e}", job.attempt);
                    if !Self::journal_append(
                        &mut state,
                        &JournalRecord::AttemptFinished {
                            id: job.id,
                            attempt: job.attempt,
                            deadline,
                            error: error.clone(),
                        },
                    ) {
                        self.cvar.notify_all();
                        continue;
                    }
                    state.clock += 1;
                    if deadline {
                        state.counters.deadline_failures += 1;
                    }
                    job.errors.push(error);
                    if job.attempt >= job.spec.max_attempts {
                        // Poison job: park it with its history; the
                        // queue keeps draining. The Quarantined record is
                        // redundant with the final AttemptFinished (replay
                        // derives the same terminal from either), so a
                        // crash between the two appends loses nothing.
                        if !Self::journal_append(
                            &mut state,
                            &JournalRecord::Quarantined {
                                id: job.id,
                                attempts: job.attempt,
                                shed: job.shed,
                            },
                        ) {
                            self.cvar.notify_all();
                            continue;
                        }
                        state.counters.quarantined += 1;
                        state.admission.release(job.footprint);
                        let wall_ms = job
                            .started
                            .map(|t| t.elapsed().as_secs_f64() * 1e3)
                            .unwrap_or(0.0);
                        state.outcomes[job.id.0 as usize] = Some(JobOutcome {
                            id: job.id,
                            tenant: job.spec.tenant.clone(),
                            priority: job.spec.priority,
                            state: JobState::Quarantined,
                            shed: job.shed,
                            attempts: job.attempt,
                            digest: 0,
                            stats: None,
                            reject_reason: None,
                            errors: job.errors,
                            wall_ms,
                        });
                    } else {
                        // Bounded retry with saturating seeded backoff,
                        // paced in virtual ticks.
                        let retry = job.attempt;
                        let delay = job.spec.backoff.delay(job.spec.seed, retry);
                        state.counters.retries += 1;
                        state.counters.backoff_ticks += delay;
                        job.attempt += 1;
                        job.not_before = state.clock + delay;
                        state.queue.push(job);
                    }
                }
            }
            self.cvar.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{GraphSpec, Workload};
    use csmpc_graph::rng::Seed;

    fn basic(tenant: &str, seed: u64) -> JobSpec {
        JobSpec::basic(
            tenant,
            Workload::CcLabels,
            GraphSpec::TwoCycles { n: 8 },
            Seed(seed),
        )
    }

    #[test]
    fn batch_completes_and_counts() {
        let svc = JobService::new(ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        });
        let report = svc.run_batch((0..6).map(|i| basic("t", i)).collect());
        assert_eq!(report.outcomes.len(), 6);
        assert!(report
            .outcomes
            .iter()
            .all(|o| o.state == JobState::Completed));
        assert_eq!(report.counters.submitted, 6);
        assert_eq!(report.counters.completed, 6);
        assert_eq!(report.counters.rejected, 0);
    }

    #[test]
    fn over_capacity_jobs_reject_with_reason_and_queue_drains() {
        // Size capacity to exactly two job footprints plus slack, so
        // the third identical submission must be refused.
        let spec = basic("t", 0);
        let shared = crate::graph_store::global().get(&spec.graph);
        let mcfg = job_mpc_config(&spec, ParallelismMode::default());
        let n = shared.graph.n();
        let footprint = mcfg.machines_for(n, shared.words) * mcfg.local_space(n);
        let capacity = 2 * footprint + footprint / 2;
        let svc = JobService::new(ServiceConfig {
            workers: 2,
            capacity_words: capacity,
            shed_fraction: 1.0,
            ..ServiceConfig::default()
        });
        let report = svc.run_batch((0..3).map(|i| basic("t", i)).collect());
        let rejected: Vec<_> = report
            .outcomes
            .iter()
            .filter(|o| o.state == JobState::Rejected)
            .collect();
        assert_eq!(rejected.len(), 1, "{:?}", report.counters);
        assert_eq!(rejected[0].id, JobId(2));
        assert!(rejected[0]
            .reject_reason
            .as_deref()
            .unwrap()
            .contains(&format!("capacity {capacity}")));
        // Admitted jobs still completed — a reject never wedges peers.
        assert_eq!(
            report.counters.completed + report.counters.rejected,
            report.counters.submitted
        );
    }

    #[test]
    fn poison_job_quarantines_with_error_history_without_wedging_peers() {
        let svc = JobService::new(ServiceConfig {
            workers: 3,
            ..ServiceConfig::default()
        });
        let mut poison = basic("t", 1);
        poison.deadline_rounds = Some(1); // trips on every attempt
        poison.max_attempts = 3;
        let report = svc.run_batch(vec![basic("t", 0), poison, basic("t", 2)]);
        let q = &report.outcomes[1];
        assert_eq!(q.state, JobState::Quarantined);
        assert_eq!(q.attempts, 3);
        assert_eq!(q.errors.len(), 3);
        assert!(q.errors[0].contains("round limit 1 exceeded"), "{q:?}");
        assert_eq!(report.counters.retries, 2);
        assert_eq!(report.counters.deadline_failures, 3);
        assert!(report.counters.backoff_ticks > 0);
        assert_eq!(report.outcomes[0].state, JobState::Completed);
        assert_eq!(report.outcomes[2].state, JobState::Completed);
    }

    #[test]
    fn shed_low_priority_jobs_degrade_instead_of_failing() {
        // Capacity admits everything; watermark 0 sheds every low-
        // priority submission.
        let svc = JobService::new(ServiceConfig {
            workers: 2,
            shed_fraction: 0.0,
            ..ServiceConfig::default()
        });
        let mut low = basic("t", 5);
        low.priority = Priority::Low;
        let report = svc.run_batch(vec![low, basic("t", 6)]);
        assert!(report.outcomes[0].shed);
        assert!(!report.outcomes[1].shed);
        // A shed fault-free job still completes fully.
        assert_eq!(report.outcomes[0].state, JobState::Completed);
        assert_eq!(report.counters.shed, 1);
    }

    #[test]
    fn fingerprint_ignores_wall_clock() {
        let svc = JobService::new(ServiceConfig::default());
        let mut report = svc.run_batch(vec![basic("t", 9)]);
        let fp = report.fingerprint();
        report.outcomes[0].wall_ms += 1234.5;
        assert_eq!(report.fingerprint(), fp);
    }
}
