//! Crash-consistent write-ahead journal for the job service.
//!
//! The scheduler appends one [`JournalRecord`] per job-lifecycle
//! transition — submitted, admitted (full service or the shedding rung),
//! rejected, attempt-started, attempt-finished, quarantined, completed —
//! *before* applying the transition to in-memory state. A service
//! process that dies mid-batch can then be reconstructed by replaying
//! the log ([`crate::recovery`]): every decision that feeds the
//! deterministic attempt function `(spec, attempt, shed, mode)` is
//! durable, and everything that is not durable is recomputable.
//!
//! ## On-disk format
//!
//! The journal is a dependency-free, append-only binary log of frames:
//!
//! ```text
//! ┌──────────┬───────────┬────────────────┐
//! │ len: u32 │ crc: u64  │ payload (len B)│   all little-endian
//! └──────────┴───────────┴────────────────┘
//! ```
//!
//! `crc` is FNV-1a over the four length bytes followed by the payload,
//! so a bit-flip in either the framing or the body is detected. The
//! payload starts with a one-byte record tag; every field is written by
//! the hand-rolled codec in this module (no serde, no external crates).
//!
//! ## Torn tails vs interior corruption
//!
//! A crash can tear the *final* frame (partial write) but can never
//! damage an already-flushed interior frame. Recovery therefore applies
//! two different rules ([`Journal::open_for_recovery`]):
//!
//! * **Torn tail** — the file ends mid-frame (short header, declared
//!   length overrunning the end, or a checksum/decoding failure on the
//!   frame that touches end-of-file): the tail is truncated and the
//!   clean prefix is replayed. This is the expected crash signature.
//! * **Interior corruption** — a checksum or decode failure on a frame
//!   with bytes after it: the log itself is damaged (bit rot, overwrite)
//!   and replaying a prefix could silently drop acknowledged state, so
//!   this is a **hard error** ([`JournalError::Corrupt`]).
//!
//! One known limit, shared with real-world WALs: a corrupted interior
//! *length* field that makes the frame overrun end-of-file is
//! indistinguishable from a torn tail without a sealed epoch footer, and
//! is treated as one.
//!
//! ## Crash injection
//!
//! [`CrashPlan`] simulates the failure modes deterministically: kill the
//! service after `k` persisted records, tear the fatal frame after a
//! byte prefix, or duplicate one record (a retried write that was in
//! fact durable the first time). The plan lives inside the journal so
//! the scheduler's append sites need no test-only branching.

use crate::job::{GraphSpec, JobId, JobSpec, Priority, Workload};
use crate::FaultSpec;
use csmpc_graph::rng::{Seed, SplitMix64};
use csmpc_mpc::Stats;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Frame header size: `u32` length + `u64` checksum.
pub const FRAME_HEADER: usize = 12;

/// Hard ceiling on a single payload (a `JobSpec` is a few hundred bytes;
/// error histories are bounded by the attempt budget). A declared length
/// beyond this is treated as framing damage, never allocated.
const MAX_PAYLOAD: usize = 1 << 24;

/// FNV-1a over the length prefix and payload of one frame.
#[must_use]
fn frame_checksum(len: u32, payload: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in len.to_le_bytes().into_iter().chain(payload.iter().copied()) {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Byte-level codec
// ---------------------------------------------------------------------------

/// Little-endian, length-prefixed primitive writers shared by the record
/// and spec codecs.
pub(crate) mod wire {
    /// Appends a `u8`.
    pub fn put_u8(out: &mut Vec<u8>, v: u8) {
        out.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(out: &mut Vec<u8>, v: u32) {
        out.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(out: &mut Vec<u8>, v: u64) {
        out.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a bool as one byte.
    pub fn put_bool(out: &mut Vec<u8>, v: bool) {
        out.push(u8::from(v));
    }

    /// Appends a UTF-8 string as `u32` length + bytes.
    pub fn put_str(out: &mut Vec<u8>, s: &str) {
        put_u32(out, s.len() as u32);
        out.extend_from_slice(s.as_bytes());
    }

    /// A checked sequential reader over one payload.
    #[derive(Debug)]
    pub struct Reader<'a> {
        buf: &'a [u8],
        pos: usize,
    }

    impl<'a> Reader<'a> {
        /// A reader positioned at the start of `buf`.
        pub fn new(buf: &'a [u8]) -> Self {
            Reader { buf, pos: 0 }
        }

        fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], String> {
            if self.buf.len() - self.pos < n {
                return Err(format!(
                    "payload truncated reading {what}: need {n} bytes at offset {}, have {}",
                    self.pos,
                    self.buf.len() - self.pos
                ));
            }
            let s = &self.buf[self.pos..self.pos + n];
            self.pos += n;
            Ok(s)
        }

        /// Reads a `u8`.
        pub fn u8(&mut self, what: &str) -> Result<u8, String> {
            Ok(self.take(1, what)?[0])
        }

        /// Reads a little-endian `u32`.
        pub fn u32(&mut self, what: &str) -> Result<u32, String> {
            let b = self.take(4, what)?;
            Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
        }

        /// Reads a little-endian `u64`.
        pub fn u64(&mut self, what: &str) -> Result<u64, String> {
            let b = self.take(8, what)?;
            let mut a = [0u8; 8];
            a.copy_from_slice(b);
            Ok(u64::from_le_bytes(a))
        }

        /// Reads a bool byte (strictly 0 or 1).
        pub fn bool(&mut self, what: &str) -> Result<bool, String> {
            match self.u8(what)? {
                0 => Ok(false),
                1 => Ok(true),
                v => Err(format!("invalid bool byte {v} for {what}")),
            }
        }

        /// Reads a length-prefixed UTF-8 string.
        pub fn str(&mut self, what: &str) -> Result<String, String> {
            let len = self.u32(what)? as usize;
            let bytes = self.take(len, what)?;
            String::from_utf8(bytes.to_vec()).map_err(|e| format!("{what} is not UTF-8: {e}"))
        }

        /// `true` once every byte has been consumed.
        pub fn exhausted(&self) -> bool {
            self.pos == self.buf.len()
        }
    }
}

use wire::{put_bool, put_str, put_u32, put_u64, put_u8, Reader};

fn encode_stats(out: &mut Vec<u8>, s: &Stats) {
    put_u64(out, s.rounds as u64);
    put_u64(out, s.max_round_words as u64);
    put_u64(out, s.max_storage_words as u64);
    put_u64(out, s.total_words);
    put_u64(out, s.recovery_rounds as u64);
    put_u64(out, s.recovery_words);
    put_u64(out, s.speculative_rounds as u64);
    put_u64(out, s.corrupted_detected);
}

fn decode_stats(r: &mut Reader<'_>) -> Result<Stats, String> {
    Ok(Stats {
        rounds: r.u64("stats.rounds")? as usize,
        max_round_words: r.u64("stats.max_round_words")? as usize,
        max_storage_words: r.u64("stats.max_storage_words")? as usize,
        total_words: r.u64("stats.total_words")?,
        recovery_rounds: r.u64("stats.recovery_rounds")? as usize,
        recovery_words: r.u64("stats.recovery_words")?,
        speculative_rounds: r.u64("stats.speculative_rounds")? as usize,
        corrupted_detected: r.u64("stats.corrupted_detected")?,
        // Phase timings are wall-clock observability, excluded from Stats
        // equality and the report fingerprint; a recovered ledger starts
        // them at zero.
        ..Stats::default()
    })
}

/// Encodes a full [`JobSpec`] field by field (tags from
/// [`crate::job`]'s serde helpers).
fn encode_spec(out: &mut Vec<u8>, spec: &JobSpec) {
    put_str(out, &spec.tenant);
    put_u8(out, spec.priority.tag());
    match spec.workload {
        Workload::LubyMis => put_u8(out, 0),
        Workload::CcLabels => put_u8(out, 1),
        Workload::BallColoring { radius } => {
            put_u8(out, 2);
            put_u64(out, radius as u64);
        }
    }
    match spec.graph {
        GraphSpec::Cycle { n } => {
            put_u8(out, 0);
            put_u64(out, n as u64);
        }
        GraphSpec::Path { n } => {
            put_u8(out, 1);
            put_u64(out, n as u64);
        }
        GraphSpec::TwoCycles { n } => {
            put_u8(out, 2);
            put_u64(out, n as u64);
        }
        GraphSpec::RandomTree { n, seed } => {
            put_u8(out, 3);
            put_u64(out, n as u64);
            put_u64(out, seed);
        }
    }
    put_u64(out, spec.seed.0);
    match &spec.faults {
        None => put_bool(out, false),
        Some(f) => {
            put_bool(out, true);
            put_u64(out, f.crashes as u64);
            put_u64(out, f.stragglers as u64);
            put_u64(out, f.horizon as u64);
            put_u32(out, u32::from(f.corrupt_per_mille));
            put_u64(out, f.seed);
        }
    }
    put_u64(out, spec.phi.to_bits());
    put_u64(out, spec.min_space as u64);
    match spec.deadline_rounds {
        None => put_bool(out, false),
        Some(d) => {
            put_bool(out, true);
            put_u64(out, d as u64);
        }
    }
    put_u32(out, spec.max_attempts);
    put_u64(out, spec.backoff.base);
    put_u64(out, spec.backoff.cap);
    put_u64(out, spec.recovery_retries as u64);
}

fn decode_spec(r: &mut Reader<'_>) -> Result<JobSpec, String> {
    let tenant = r.str("spec.tenant")?;
    let priority = Priority::from_tag(r.u8("spec.priority")?)
        .ok_or_else(|| "invalid priority tag".to_string())?;
    let workload = match r.u8("spec.workload")? {
        0 => Workload::LubyMis,
        1 => Workload::CcLabels,
        2 => Workload::BallColoring {
            radius: r.u64("spec.workload.radius")? as usize,
        },
        t => return Err(format!("invalid workload tag {t}")),
    };
    let graph = match r.u8("spec.graph")? {
        0 => GraphSpec::Cycle {
            n: r.u64("spec.graph.n")? as usize,
        },
        1 => GraphSpec::Path {
            n: r.u64("spec.graph.n")? as usize,
        },
        2 => GraphSpec::TwoCycles {
            n: r.u64("spec.graph.n")? as usize,
        },
        3 => GraphSpec::RandomTree {
            n: r.u64("spec.graph.n")? as usize,
            seed: r.u64("spec.graph.seed")?,
        },
        t => return Err(format!("invalid graph tag {t}")),
    };
    let seed = Seed(r.u64("spec.seed")?);
    let faults = if r.bool("spec.faults.some")? {
        Some(FaultSpec {
            crashes: r.u64("spec.faults.crashes")? as usize,
            stragglers: r.u64("spec.faults.stragglers")? as usize,
            horizon: r.u64("spec.faults.horizon")? as usize,
            corrupt_per_mille: r.u32("spec.faults.corrupt")? as u16,
            seed: r.u64("spec.faults.seed")?,
        })
    } else {
        None
    };
    let phi = f64::from_bits(r.u64("spec.phi")?);
    let min_space = r.u64("spec.min_space")? as usize;
    let deadline_rounds = if r.bool("spec.deadline.some")? {
        Some(r.u64("spec.deadline")? as usize)
    } else {
        None
    };
    let max_attempts = r.u32("spec.max_attempts")?;
    let backoff = crate::BackoffPolicy {
        base: r.u64("spec.backoff.base")?,
        cap: r.u64("spec.backoff.cap")?,
    };
    let recovery_retries = r.u64("spec.recovery_retries")? as usize;
    Ok(JobSpec {
        tenant,
        priority,
        workload,
        graph,
        seed,
        faults,
        phi,
        min_space,
        deadline_rounds,
        max_attempts,
        backoff,
        recovery_retries,
    })
}

// ---------------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------------

/// One durable job-lifecycle transition. The scheduler appends the
/// record *before* applying the transition; replay reconstructs the
/// scheduler state by folding records in order.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// A spec entered the service and was assigned `id`.
    Submitted {
        /// Dense submission index.
        id: JobId,
        /// The full spec — everything an attempt is a pure function of.
        spec: JobSpec,
    },
    /// Admission booked `footprint` words at full service.
    Admitted {
        /// The job.
        id: JobId,
        /// Booked `M × S` words, persisted so replay re-books exactly.
        footprint: u64,
    },
    /// Admission booked `footprint` words on the shedding rung
    /// (supervised partial-output mode).
    Shed {
        /// The job.
        id: JobId,
        /// Booked `M × S` words.
        footprint: u64,
    },
    /// Admission refused the job; terminal at submission.
    Rejected {
        /// The job.
        id: JobId,
        /// The budget arithmetic from the controller.
        reason: String,
    },
    /// A worker dispatched attempt `attempt` (1-based). An attempt with
    /// a start but no finish was in flight at the crash and is re-run on
    /// recovery — attempts are pure, so the re-run is bit-identical.
    AttemptStarted {
        /// The job.
        id: JobId,
        /// 1-based attempt number.
        attempt: u32,
    },
    /// Attempt `attempt` failed with `error` (successes are recorded by
    /// [`JournalRecord::Completed`] directly — the terminal record *is*
    /// the finish record, so no success can be half-recorded).
    AttemptFinished {
        /// The job.
        id: JobId,
        /// 1-based attempt number.
        attempt: u32,
        /// `true` when the failure was a tripped job deadline
        /// (feeds the `deadline_failures` counter on replay).
        deadline: bool,
        /// The formatted error pushed onto the job's history.
        error: String,
    },
    /// The job exhausted its attempt budget and was parked.
    Quarantined {
        /// The job.
        id: JobId,
        /// Attempts executed.
        attempts: u32,
        /// Whether it ran on the shedding rung.
        shed: bool,
    },
    /// The job produced output (full or degraded) — the terminal record
    /// carries everything the fingerprint covers.
    Completed {
        /// The job.
        id: JobId,
        /// Attempts executed.
        attempts: u32,
        /// Whether it ran on the shedding rung.
        shed: bool,
        /// `true` for supervised partial output ([`crate::JobState::Degraded`]).
        degraded: bool,
        /// [`crate::job::labels_digest`] of the output.
        digest: u64,
        /// The final attempt's ledger (model observables; phase timings
        /// are not persisted).
        stats: Stats,
    },
}

impl JournalRecord {
    /// Encodes the record payload (tag byte + fields, no framing).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        match self {
            JournalRecord::Submitted { id, spec } => {
                put_u8(&mut out, 1);
                put_u64(&mut out, id.0);
                encode_spec(&mut out, spec);
            }
            JournalRecord::Admitted { id, footprint } => {
                put_u8(&mut out, 2);
                put_u64(&mut out, id.0);
                put_u64(&mut out, *footprint);
            }
            JournalRecord::Shed { id, footprint } => {
                put_u8(&mut out, 3);
                put_u64(&mut out, id.0);
                put_u64(&mut out, *footprint);
            }
            JournalRecord::Rejected { id, reason } => {
                put_u8(&mut out, 4);
                put_u64(&mut out, id.0);
                put_str(&mut out, reason);
            }
            JournalRecord::AttemptStarted { id, attempt } => {
                put_u8(&mut out, 5);
                put_u64(&mut out, id.0);
                put_u32(&mut out, *attempt);
            }
            JournalRecord::AttemptFinished {
                id,
                attempt,
                deadline,
                error,
            } => {
                put_u8(&mut out, 6);
                put_u64(&mut out, id.0);
                put_u32(&mut out, *attempt);
                put_bool(&mut out, *deadline);
                put_str(&mut out, error);
            }
            JournalRecord::Quarantined { id, attempts, shed } => {
                put_u8(&mut out, 7);
                put_u64(&mut out, id.0);
                put_u32(&mut out, *attempts);
                put_bool(&mut out, *shed);
            }
            JournalRecord::Completed {
                id,
                attempts,
                shed,
                degraded,
                digest,
                stats,
            } => {
                put_u8(&mut out, 8);
                put_u64(&mut out, id.0);
                put_u32(&mut out, *attempts);
                put_bool(&mut out, *shed);
                put_bool(&mut out, *degraded);
                put_u64(&mut out, *digest);
                encode_stats(&mut out, stats);
            }
        }
        out
    }

    /// Decodes one record payload; the error names the failing field.
    ///
    /// # Errors
    ///
    /// A description of the malformed field — unknown tag, truncated
    /// field, invalid bool byte, trailing garbage.
    pub fn decode(payload: &[u8]) -> Result<JournalRecord, String> {
        let mut r = Reader::new(payload);
        let tag = r.u8("record tag")?;
        let rec = match tag {
            1 => JournalRecord::Submitted {
                id: JobId(r.u64("id")?),
                spec: decode_spec(&mut r)?,
            },
            2 => JournalRecord::Admitted {
                id: JobId(r.u64("id")?),
                footprint: r.u64("footprint")?,
            },
            3 => JournalRecord::Shed {
                id: JobId(r.u64("id")?),
                footprint: r.u64("footprint")?,
            },
            4 => JournalRecord::Rejected {
                id: JobId(r.u64("id")?),
                reason: r.str("reason")?,
            },
            5 => JournalRecord::AttemptStarted {
                id: JobId(r.u64("id")?),
                attempt: r.u32("attempt")?,
            },
            6 => JournalRecord::AttemptFinished {
                id: JobId(r.u64("id")?),
                attempt: r.u32("attempt")?,
                deadline: r.bool("deadline")?,
                error: r.str("error")?,
            },
            7 => JournalRecord::Quarantined {
                id: JobId(r.u64("id")?),
                attempts: r.u32("attempts")?,
                shed: r.bool("shed")?,
            },
            8 => JournalRecord::Completed {
                id: JobId(r.u64("id")?),
                attempts: r.u32("attempts")?,
                shed: r.bool("shed")?,
                degraded: r.bool("degraded")?,
                digest: r.u64("digest")?,
                stats: decode_stats(&mut r)?,
            },
            t => return Err(format!("unknown record tag {t}")),
        };
        if !r.exhausted() {
            return Err("trailing bytes after record".to_string());
        }
        Ok(rec)
    }

    /// The full on-disk frame: header (length + checksum) and payload.
    #[must_use]
    pub fn encoded_frame(&self) -> Vec<u8> {
        let payload = self.encode();
        let len = payload.len() as u32;
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        frame.extend_from_slice(&len.to_le_bytes());
        frame.extend_from_slice(&frame_checksum(len, &payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        frame
    }
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Why a journal operation failed.
#[derive(Debug)]
pub enum JournalError {
    /// The backing file could not be read or written.
    Io {
        /// The journal path.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// An interior frame failed its checksum or decode — the log is
    /// damaged beyond the torn-tail rule and must not be replayed.
    Corrupt {
        /// Byte offset of the damaged frame.
        offset: u64,
        /// What failed.
        detail: String,
    },
    /// The armed [`CrashPlan`] fired (or already fired): the simulated
    /// process is dead and nothing further will be persisted.
    Crashed,
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io { path, source } => {
                write!(f, "journal I/O error on {}: {source}", path.display())
            }
            JournalError::Corrupt { offset, detail } => {
                write!(
                    f,
                    "journal corrupt at byte offset {offset}: {detail} \
                     (interior corruption is unrecoverable; only a torn tail may be truncated)"
                )
            }
            JournalError::Crashed => write!(f, "simulated crash: the armed crash plan fired"),
        }
    }
}

impl std::error::Error for JournalError {}

// ---------------------------------------------------------------------------
// Crash injection
// ---------------------------------------------------------------------------

/// A seeded, deterministic crash to inject while journaling.
///
/// Counting starts when the plan is armed: appends `1..=after_records`
/// persist normally, and the next append is fatal — the frame is either
/// dropped entirely or torn after a byte prefix, and every subsequent
/// append fails with [`JournalError::Crashed`]. Optionally one earlier
/// record is duplicated on disk (a retried write that had in fact
/// already been durable), which replay must treat as idempotent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    /// Records that persist before the fatal append.
    pub after_records: u64,
    /// Bytes of the fatal frame that reach the disk (`None` = none;
    /// clamped below the full frame so the tail is genuinely torn).
    pub torn_bytes: Option<usize>,
    /// Duplicate the `k`-th record after arming (1-based), if it lands
    /// before the crash.
    pub duplicate_at: Option<u64>,
}

impl CrashPlan {
    /// Kill cleanly after `k` records; no torn bytes, no duplicates.
    #[must_use]
    pub fn kill_after(k: u64) -> Self {
        CrashPlan {
            after_records: k,
            torn_bytes: None,
            duplicate_at: None,
        }
    }

    /// Same, but the fatal frame leaves `bytes` bytes on disk.
    #[must_use]
    pub fn with_torn_tail(mut self, bytes: usize) -> Self {
        self.torn_bytes = Some(bytes);
        self
    }

    /// Duplicate the `k`-th record after arming.
    #[must_use]
    pub fn with_duplicate(mut self, k: u64) -> Self {
        self.duplicate_at = Some(k);
        self
    }

    /// A seeded plan with the crash point in `1..=horizon` and the tear/
    /// duplicate variants rotating deterministically with the seed.
    #[must_use]
    pub fn random(seed: Seed, horizon: u64) -> Self {
        let mut rng = SplitMix64::new(seed.derive(0x000C_4A54));
        let after = rng.range(1, horizon.max(1) + 1);
        let mut plan = CrashPlan::kill_after(after);
        match rng.range(0, 3) {
            0 => plan = plan.with_torn_tail(1 + rng.range(0, 24) as usize),
            1 if after > 1 => plan = plan.with_duplicate(rng.range(1, after + 1)),
            _ => {}
        }
        plan
    }
}

struct ArmedCrash {
    plan: CrashPlan,
    seen: u64,
}

// ---------------------------------------------------------------------------
// The journal
// ---------------------------------------------------------------------------

/// An append-only journal over one backing file.
///
/// Appends are framed, checksummed, and flushed; [`Journal::open_for_recovery`]
/// validates the whole log, truncates a torn tail in place (idempotent —
/// a crash *during* recovery just repeats the truncation), and returns
/// the decoded records for replay.
pub struct Journal {
    path: PathBuf,
    file: File,
    appended: u64,
    armed: Option<ArmedCrash>,
    crashed: bool,
}

impl fmt::Debug for Journal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Journal")
            .field("path", &self.path)
            .field("appended", &self.appended)
            .field("crashed", &self.crashed)
            .finish_non_exhaustive()
    }
}

/// What [`Journal::open_for_recovery`] found: the reopened (clean)
/// journal, the decoded records, and how many torn bytes were dropped.
#[derive(Debug)]
pub struct RecoveredLog {
    /// The journal, truncated to the clean prefix and positioned for
    /// further appends.
    pub journal: Journal,
    /// Every decoded record of the clean prefix, in append order.
    pub records: Vec<JournalRecord>,
    /// Bytes of torn tail truncated (0 for a clean log).
    pub torn_bytes_truncated: u64,
}

impl Journal {
    /// Creates (or truncates) the journal at `path`.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] if the file cannot be created.
    pub fn create(path: &Path) -> Result<Self, JournalError> {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)
            .map_err(|source| JournalError::Io {
                path: path.to_path_buf(),
                source,
            })?;
        Ok(Journal {
            path: path.to_path_buf(),
            file,
            appended: 0,
            armed: None,
            crashed: false,
        })
    }

    /// The backing file path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records appended through this handle (duplicated writes count
    /// once — they are one logical record).
    #[must_use]
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// `true` once an armed crash plan has fired.
    #[must_use]
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// Arms `plan`; counting starts now.
    pub fn arm_crash(&mut self, plan: CrashPlan) {
        self.armed = Some(ArmedCrash { plan, seen: 0 });
    }

    fn write_all(&mut self, bytes: &[u8]) -> Result<(), JournalError> {
        self.file
            .write_all(bytes)
            .and_then(|()| self.file.flush())
            .map_err(|source| JournalError::Io {
                path: self.path.clone(),
                source,
            })
    }

    /// Appends one record (write-ahead: callers persist the record
    /// *before* applying the transition it describes).
    ///
    /// # Errors
    ///
    /// [`JournalError::Crashed`] when the armed [`CrashPlan`] fires (the
    /// fatal frame is dropped or torn per the plan, and the handle is
    /// dead from then on); [`JournalError::Io`] on real write failures.
    pub fn append(&mut self, rec: &JournalRecord) -> Result<(), JournalError> {
        if self.crashed {
            return Err(JournalError::Crashed);
        }
        let frame = rec.encoded_frame();
        if let Some(armed) = &mut self.armed {
            armed.seen += 1;
            if armed.seen > armed.plan.after_records {
                let torn = armed
                    .plan
                    .torn_bytes
                    .map_or(0, |b| b.min(frame.len().saturating_sub(1)));
                self.crashed = true;
                if torn > 0 {
                    let prefix = &frame[..torn];
                    self.write_all(prefix)?;
                }
                return Err(JournalError::Crashed);
            }
            if armed.plan.duplicate_at == Some(armed.seen) {
                let mut doubled = frame.clone();
                doubled.extend_from_slice(&frame);
                self.write_all(&doubled)?;
                self.appended += 1;
                return Ok(());
            }
        }
        self.write_all(&frame)?;
        self.appended += 1;
        Ok(())
    }

    /// Validates and decodes the log at `path`, truncating a torn tail
    /// in place, and reopens it for appending.
    ///
    /// # Errors
    ///
    /// [`JournalError::Corrupt`] on interior damage (a bad frame with
    /// bytes after it); [`JournalError::Io`] if the file cannot be read,
    /// truncated, or reopened.
    pub fn open_for_recovery(path: &Path) -> Result<RecoveredLog, JournalError> {
        let io_err = |source| JournalError::Io {
            path: path.to_path_buf(),
            source,
        };
        let bytes = std::fs::read(path).map_err(io_err)?;
        let mut records = Vec::new();
        let mut pos = 0usize;
        loop {
            if pos == bytes.len() {
                break;
            }
            if bytes.len() - pos < FRAME_HEADER {
                break; // short header: torn tail
            }
            let len =
                u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
                    as usize;
            let mut crc_bytes = [0u8; 8];
            crc_bytes.copy_from_slice(&bytes[pos + 4..pos + 12]);
            let crc = u64::from_le_bytes(crc_bytes);
            if len > MAX_PAYLOAD || pos + FRAME_HEADER + len > bytes.len() {
                break; // overrunning length: torn tail (or unprovable interior len damage)
            }
            let frame_end = pos + FRAME_HEADER + len;
            let payload = &bytes[pos + FRAME_HEADER..frame_end];
            let at_eof = frame_end == bytes.len();
            if frame_checksum(len as u32, payload) != crc {
                if at_eof {
                    break; // half-written final frame: torn tail
                }
                return Err(JournalError::Corrupt {
                    offset: pos as u64,
                    detail: "frame checksum mismatch".to_string(),
                });
            }
            match JournalRecord::decode(payload) {
                Ok(rec) => records.push(rec),
                Err(detail) => {
                    if at_eof {
                        break;
                    }
                    return Err(JournalError::Corrupt {
                        offset: pos as u64,
                        detail,
                    });
                }
            }
            pos = frame_end;
        }
        let torn = (bytes.len() - pos) as u64;
        if torn > 0 {
            // Idempotent truncation: a crash here just leaves the same
            // torn tail for the next recovery to drop again.
            let f = OpenOptions::new().write(true).open(path).map_err(io_err)?;
            f.set_len(pos as u64).map_err(io_err)?;
        }
        let file = OpenOptions::new().append(true).open(path).map_err(io_err)?;
        Ok(RecoveredLog {
            journal: Journal {
                path: path.to_path_buf(),
                file,
                appended: records.len() as u64,
                armed: None,
                crashed: false,
            },
            records,
            torn_bytes_truncated: torn,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Workload;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("csmpc_journal_{}_{name}.bin", std::process::id()))
    }

    fn sample_spec(seed: u64) -> JobSpec {
        let mut s = JobSpec::basic(
            "tenant-α",
            Workload::BallColoring { radius: 2 },
            GraphSpec::RandomTree { n: 20, seed: 9 },
            Seed(seed),
        );
        s.faults = Some(FaultSpec {
            crashes: 1,
            stragglers: 2,
            horizon: 6,
            corrupt_per_mille: 40,
            seed: 0xFA57,
        });
        s.deadline_rounds = Some(40);
        s
    }

    fn sample_records() -> Vec<JournalRecord> {
        vec![
            JournalRecord::Submitted {
                id: JobId(0),
                spec: sample_spec(7),
            },
            JournalRecord::Admitted {
                id: JobId(0),
                footprint: 512,
            },
            JournalRecord::AttemptStarted {
                id: JobId(0),
                attempt: 1,
            },
            JournalRecord::AttemptFinished {
                id: JobId(0),
                attempt: 1,
                deadline: true,
                error: "attempt 1: round limit 40 exceeded".to_string(),
            },
            JournalRecord::Completed {
                id: JobId(0),
                attempts: 2,
                shed: false,
                degraded: false,
                digest: 0xDEAD_BEEF,
                stats: Stats {
                    rounds: 12,
                    total_words: 4096,
                    ..Stats::default()
                },
            },
        ]
    }

    #[test]
    fn records_roundtrip_through_the_codec() {
        for rec in sample_records() {
            let payload = rec.encode();
            assert_eq!(JournalRecord::decode(&payload).as_ref(), Ok(&rec));
        }
    }

    #[test]
    fn append_then_recover_replays_everything() {
        let path = tmp("roundtrip");
        let mut j = Journal::create(&path).unwrap();
        for rec in sample_records() {
            j.append(&rec).unwrap();
        }
        drop(j);
        let log = Journal::open_for_recovery(&path).unwrap();
        assert_eq!(log.records, sample_records());
        assert_eq!(log.torn_bytes_truncated, 0);
        assert_eq!(log.journal.appended(), 5);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated_and_clean_prefix_survives() {
        let path = tmp("torn");
        let mut j = Journal::create(&path).unwrap();
        let recs = sample_records();
        for rec in &recs {
            j.append(rec).unwrap();
        }
        drop(j);
        // Tear the last frame: drop its final 3 bytes.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let log = Journal::open_for_recovery(&path).unwrap();
        assert_eq!(log.records, recs[..recs.len() - 1]);
        assert!(log.torn_bytes_truncated > 0);
        // The truncation is idempotent: a second recovery sees a clean log.
        drop(log);
        let again = Journal::open_for_recovery(&path).unwrap();
        assert_eq!(again.records, recs[..recs.len() - 1]);
        assert_eq!(again.torn_bytes_truncated, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn interior_corruption_is_a_hard_error() {
        let path = tmp("interior");
        let mut j = Journal::create(&path).unwrap();
        for rec in sample_records() {
            j.append(&rec).unwrap();
        }
        drop(j);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one bit inside the FIRST record's payload.
        bytes[FRAME_HEADER + 4] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        match Journal::open_for_recovery(&path) {
            Err(JournalError::Corrupt { offset, .. }) => assert_eq!(offset, 0),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn crash_plan_kills_after_k_records_and_stays_dead() {
        let path = tmp("crash");
        let mut j = Journal::create(&path).unwrap();
        j.arm_crash(CrashPlan::kill_after(2));
        let recs = sample_records();
        j.append(&recs[0]).unwrap();
        j.append(&recs[1]).unwrap();
        assert!(matches!(j.append(&recs[2]), Err(JournalError::Crashed)));
        assert!(j.crashed());
        assert!(matches!(j.append(&recs[3]), Err(JournalError::Crashed)));
        drop(j);
        let log = Journal::open_for_recovery(&path).unwrap();
        assert_eq!(log.records, recs[..2]);
        assert_eq!(log.torn_bytes_truncated, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn crash_plan_tears_the_fatal_frame() {
        let path = tmp("crash_torn");
        let mut j = Journal::create(&path).unwrap();
        j.arm_crash(CrashPlan::kill_after(1).with_torn_tail(7));
        let recs = sample_records();
        j.append(&recs[0]).unwrap();
        assert!(matches!(j.append(&recs[1]), Err(JournalError::Crashed)));
        drop(j);
        let log = Journal::open_for_recovery(&path).unwrap();
        assert_eq!(log.records, recs[..1]);
        assert_eq!(log.torn_bytes_truncated, 7);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn crash_plan_duplicates_a_record_on_disk() {
        let path = tmp("crash_dup");
        let mut j = Journal::create(&path).unwrap();
        j.arm_crash(CrashPlan::kill_after(10).with_duplicate(2));
        let recs = sample_records();
        for rec in &recs[..3] {
            j.append(rec).unwrap();
        }
        drop(j);
        let log = Journal::open_for_recovery(&path).unwrap();
        assert_eq!(log.records.len(), 4, "record 2 appears twice");
        assert_eq!(log.records[1], log.records[2]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn seeded_crash_plans_are_deterministic() {
        for s in 0..32 {
            assert_eq!(
                CrashPlan::random(Seed(s), 20),
                CrashPlan::random(Seed(s), 20)
            );
            let p = CrashPlan::random(Seed(s), 20);
            assert!((1..=20).contains(&p.after_records));
        }
        // The variant space is actually explored.
        let torn = (0..64).any(|s| CrashPlan::random(Seed(s), 20).torn_bytes.is_some());
        let dup = (0..64).any(|s| CrashPlan::random(Seed(s), 20).duplicate_at.is_some());
        assert!(torn && dup);
    }
}
