//! Multi-tenant job service over the low-space MPC simulator.
//!
//! The robustness machinery of the lower crates (seeded [`FaultPlan`]s,
//! charged recovery, supervised degradation) protects a *single* run.
//! This crate guards the system *between* runs: a fleet of seeded jobs —
//! algorithm × graph × fault plan × space budget — flows through a
//! submission queue and a worker-pool scheduler, fronted by robustness
//! controls at every boundary:
//!
//! * **Admission control** ([`AdmissionController`]): the aggregate
//!   memory reservation of admitted jobs (each `M × S` words, with
//!   `S = n^φ`) is capped; a job that would push the fleet over capacity
//!   is rejected with a reason naming the budget, never silently dropped.
//! * **Overload shedding**: past a configurable watermark, low-priority
//!   jobs are *downgraded* to supervised partial-output mode
//!   ([`csmpc_mpc::run_supervised`]) instead of being refused — the
//!   shedding ladder degrades before it rejects.
//! * **Per-job deadlines**: each job may arm a ledger-round deadline
//!   ([`csmpc_mpc::Cluster::arm_job_deadline`]) enforced at the engine
//!   barrier, so recovery stalls and straggler waits consume the budget.
//! * **Bounded retry with saturating backoff** ([`BackoffPolicy`]):
//!   job-level mirror of [`csmpc_mpc::RecoveryPolicy`] restart-with-backoff —
//!   delays double, saturate at a cap, and are a pure function of
//!   `(seed, attempt)`.
//! * **Poison-job quarantine**: a job that fails its whole attempt
//!   budget is parked with its error history; the queue keeps draining.
//! * **Tenant fairness**: dispatch rotates across tenants at equal
//!   priority, so one tenant's burst cannot starve another.
//!
//! Jobs on the same graph share one CSR spine through the process-wide
//! [`csmpc_mpc::ball_cache::csr_global`] cache (the content-keyed
//! [`csmpc_mpc::BallCache`] family), and per-job seeded determinism
//! survives concurrent scheduling: an attempt's result is a pure
//! function of `(spec, attempt, shed)` — wall-clock observability never
//! feeds back into outputs, so the same batch produces bit-identical
//! per-job digests regardless of worker interleaving.
//!
//! **Durability**: the service process itself is no longer a single
//! point of failure. A service built with
//! [`JobService::with_journal`] write-ahead journals every lifecycle
//! transition into an append-only, checksummed binary log
//! ([`Journal`]); after a crash (simulated deterministically by a
//! seeded [`CrashPlan`]), [`JobService::recover`] truncates any torn
//! tail, replays the clean prefix into reconstructed scheduler state,
//! and resumes — producing a [`ServiceReport`] whose fingerprint is
//! bit-identical to an uninterrupted run, precisely because attempts
//! are pure and every decision feeding them is durable. Replay work is
//! charged into a standalone ledger ([`RecoveryInfo::replay_stats`]):
//! recovery is never free, here no more than inside a run.
//!
//! [`FaultPlan`]: csmpc_mpc::FaultPlan

pub mod admission;
pub mod backoff;
pub mod graph_store;
pub mod job;
pub mod journal;
pub mod recovery;
pub mod scheduler;

pub use admission::{AdmissionController, AdmissionDecision};
pub use backoff::BackoffPolicy;
pub use graph_store::{GraphStore, SharedGraph};
pub use job::{run_job, FaultSpec, GraphSpec, JobId, JobSpec, Priority, Workload};
pub use journal::{CrashPlan, Journal, JournalError, JournalRecord, RecoveredLog};
pub use recovery::{RecoveryError, RecoveryInfo};
pub use scheduler::{Counters, JobOutcome, JobService, JobState, ServiceConfig, ServiceReport};
