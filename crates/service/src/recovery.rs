//! Deterministic service recovery: replaying a crash-consistent journal
//! back into a live [`JobService`].
//!
//! ## Why replay is exact
//!
//! Everything the report fingerprint covers is a pure function of
//! durable inputs:
//!
//! * An attempt's result is pure in `(spec, attempt, shed, mode)` —
//!   [`crate::scheduler`]'s structural determinism. Specs, admission
//!   decisions (including the shed rung), and attempt numbers are all
//!   write-ahead journaled, so a recovered service re-runs exactly the
//!   attempts the dead process would have run, and gets bit-identical
//!   results.
//! * Terminal records carry their own `shed`/`attempts`/`digest`/ledger
//!   fields, so restoring a finished job never depends on any other
//!   record that might sit closer to the torn tail.
//! * Scheduler ordering state (virtual clock, fairness stamps, backoff
//!   `not_before` gates) shapes *dispatch order only*, never results —
//!   replay reconstructs it faithfully from the record sequence, but the
//!   fingerprint would match even if it could not.
//!
//! An attempt with a start record but no finish was in flight when the
//! process died; its result evaporated with the process, and the
//! recovered service simply re-runs that attempt number. A submission
//! whose admission decision was the torn record is re-decided at the end
//! of replay against the reconstructed bookings — identical to the lost
//! decision, because admission is a pure function of booked state and
//! the torn record is by construction the last event of the log.
//!
//! ## Replay accounting
//!
//! Extending the paper's discipline that recovery is never free, replay
//! charges one round plus the frame's words per record into a standalone
//! [`Stats`] ledger ([`RecoveryInfo::replay_stats`], via
//! [`Stats::charge_replay`]). The ledger is observability: it is *not*
//! folded into any per-job ledger, which are fingerprint-covered and
//! must stay bit-identical to the uninterrupted run.

use crate::admission::{AdmissionController, AdmissionDecision};
use crate::graph_store;
use crate::job::{JobId, JobSpec};
use crate::journal::{Journal, JournalError, JournalRecord, RecoveredLog, FRAME_HEADER};
use crate::scheduler::{
    job_mpc_config, Counters, JobOutcome, JobService, JobState, QueuedJob, SchedState,
    ServiceConfig,
};
use csmpc_mpc::Stats;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::Path;

/// Why recovery refused to reconstruct a service.
#[derive(Debug)]
pub enum RecoveryError {
    /// The journal itself could not be read, or is interior-corrupt.
    Journal(JournalError),
    /// The log decoded cleanly but describes an impossible history
    /// (e.g. an attempt for a job that was never submitted). This means
    /// a scheduler/journal bug, not disk damage.
    Inconsistent {
        /// Zero-based index of the offending record.
        record: usize,
        /// What made it impossible.
        detail: String,
    },
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::Journal(e) => write!(f, "recovery failed: {e}"),
            RecoveryError::Inconsistent { record, detail } => {
                write!(f, "journal record {record} is inconsistent: {detail}")
            }
        }
    }
}

impl std::error::Error for RecoveryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RecoveryError::Journal(e) => Some(e),
            RecoveryError::Inconsistent { .. } => None,
        }
    }
}

impl From<JournalError> for RecoveryError {
    fn from(e: JournalError) -> Self {
        RecoveryError::Journal(e)
    }
}

/// What one recovery did — counts for reporting, plus the replay ledger.
#[derive(Debug, Clone)]
pub struct RecoveryInfo {
    /// Records folded from the clean prefix.
    pub records_replayed: u64,
    /// Records ignored as idempotent duplicates (retried writes that
    /// were in fact durable the first time).
    pub duplicates_ignored: u64,
    /// Torn-tail bytes truncated by [`Journal::open_for_recovery`].
    pub torn_bytes_truncated: u64,
    /// Jobs restored directly to a terminal outcome.
    pub restored_terminal: u64,
    /// Jobs re-queued to resume execution.
    pub resumed_jobs: u64,
    /// Submissions whose admission decision was the torn record and was
    /// re-derived (and re-journaled) against the reconstructed bookings.
    pub rederived_admissions: u64,
    /// The replay cost ledger: one round plus the frame's words charged
    /// per record ([`Stats::charge_replay`]). Standalone observability —
    /// never folded into fingerprint-covered per-job ledgers.
    pub replay_stats: Stats,
}

/// The durable admission verdict for one replayed job.
#[derive(Clone, Copy)]
enum Decision {
    Admit { footprint: u64 },
    Shed { footprint: u64 },
    Rejected,
}

/// Accumulated replay state for one job.
struct ReplayJob {
    spec: JobSpec,
    decision: Option<Decision>,
    /// Attempt the job runs next (1-based) if it resumes.
    attempt_next: u32,
    errors: Vec<String>,
    started: BTreeSet<u32>,
    finished: BTreeSet<u32>,
    not_before: u64,
    terminal: Option<JobOutcome>,
}

impl ReplayJob {
    fn new(spec: JobSpec) -> Self {
        ReplayJob {
            spec,
            decision: None,
            attempt_next: 1,
            errors: Vec::new(),
            started: BTreeSet::new(),
            finished: BTreeSet::new(),
            not_before: 0,
            terminal: None,
        }
    }

    fn shed(&self) -> bool {
        matches!(self.decision, Some(Decision::Shed { .. }))
    }

    fn live_footprint(&self) -> Option<u64> {
        if self.terminal.is_some() {
            return None;
        }
        match self.decision {
            Some(Decision::Admit { footprint } | Decision::Shed { footprint }) => Some(footprint),
            _ => None,
        }
    }
}

impl JobService {
    /// Reconstructs a service from the journal at `path`: validates the
    /// log (truncating a torn tail), replays every record into scheduler
    /// state, and returns the service positioned to
    /// [`run_recoverable`](JobService::run_recoverable) the remainder of
    /// the batch. Because attempts are pure and every decision feeding
    /// them is durable, the resumed batch's [`crate::ServiceReport`]
    /// fingerprint is bit-identical to an uninterrupted run.
    ///
    /// Recovery itself is crash-consistent: it mutates the log only by
    /// the idempotent torn-tail truncation and by appending re-derived
    /// admission decisions, so dying *during* recovery and recovering
    /// again converges to the same state.
    ///
    /// # Errors
    ///
    /// [`RecoveryError::Journal`] for unreadable or interior-corrupt
    /// logs; [`RecoveryError::Inconsistent`] when a clean log describes
    /// an impossible history.
    pub fn recover(
        cfg: ServiceConfig,
        path: &Path,
    ) -> Result<(JobService, RecoveryInfo), RecoveryError> {
        let log = Journal::open_for_recovery(path)?;
        let (state, info) = replay_journal(&cfg, log)?;
        Ok((JobService::from_replayed(cfg, state), info))
    }
}

/// Folds a recovered log into a ready-to-run [`SchedState`]. This is the
/// replay entry point proper — [`JobService::recover`] is the thin
/// public wrapper around it.
pub(crate) fn replay_journal(
    cfg: &ServiceConfig,
    log: RecoveredLog,
) -> Result<(SchedState, RecoveryInfo), RecoveryError> {
    let RecoveredLog {
        mut journal,
        records,
        torn_bytes_truncated,
    } = log;

    let mut jobs: BTreeMap<u64, ReplayJob> = BTreeMap::new();
    let mut counters = Counters::default();
    let mut clock: u64 = 0;
    let mut dispatches: u64 = 0;
    let mut last_served: BTreeMap<String, u64> = BTreeMap::new();
    let mut duplicates_ignored: u64 = 0;
    let mut replay_stats = Stats::default();

    let inconsistent =
        |record: usize, detail: String| RecoveryError::Inconsistent { record, detail };
    for (i, rec) in records.iter().enumerate() {
        // Recovery is never free: every durable record costs a replay
        // round and its frame's words.
        let frame_words = ((FRAME_HEADER + rec.encode().len()) as u64).div_ceil(8);
        replay_stats.charge_replay(1, frame_words);
        match rec {
            JournalRecord::Submitted { id, spec } => {
                if jobs.contains_key(&id.0) {
                    duplicates_ignored += 1;
                    continue;
                }
                if id.0 != jobs.len() as u64 {
                    return Err(inconsistent(
                        i,
                        format!("submission id {} breaks the dense id space", id.0),
                    ));
                }
                counters.submitted += 1;
                jobs.insert(id.0, ReplayJob::new(spec.clone()));
            }
            JournalRecord::Admitted { id, footprint } | JournalRecord::Shed { id, footprint } => {
                let shed = matches!(rec, JournalRecord::Shed { .. });
                let job = jobs
                    .get_mut(&id.0)
                    .ok_or_else(|| inconsistent(i, format!("decision for unknown job {}", id.0)))?;
                if job.decision.is_some() {
                    duplicates_ignored += 1;
                    continue;
                }
                counters.admitted += 1;
                job.decision = Some(if shed {
                    counters.shed += 1;
                    Decision::Shed {
                        footprint: *footprint,
                    }
                } else {
                    Decision::Admit {
                        footprint: *footprint,
                    }
                });
            }
            JournalRecord::Rejected { id, reason } => {
                let job = jobs
                    .get_mut(&id.0)
                    .ok_or_else(|| inconsistent(i, format!("rejection of unknown job {}", id.0)))?;
                if job.decision.is_some() {
                    duplicates_ignored += 1;
                    continue;
                }
                counters.rejected += 1;
                job.decision = Some(Decision::Rejected);
                job.terminal = Some(rejected_outcome(*id, &job.spec, reason.clone()));
            }
            JournalRecord::AttemptStarted { id, attempt } => {
                let job = jobs.get_mut(&id.0).ok_or_else(|| {
                    inconsistent(i, format!("attempt start for unknown job {}", id.0))
                })?;
                if !job.started.insert(*attempt) {
                    duplicates_ignored += 1;
                    continue;
                }
                dispatches += 1;
                last_served.insert(job.spec.tenant.clone(), dispatches);
                job.attempt_next = job.attempt_next.max(*attempt);
            }
            JournalRecord::AttemptFinished {
                id,
                attempt,
                deadline,
                error,
            } => {
                let job = jobs.get_mut(&id.0).ok_or_else(|| {
                    inconsistent(i, format!("attempt finish for unknown job {}", id.0))
                })?;
                if job.terminal.is_some() || !job.finished.insert(*attempt) {
                    duplicates_ignored += 1;
                    continue;
                }
                clock += 1;
                if *deadline {
                    counters.deadline_failures += 1;
                }
                job.errors.push(error.clone());
                if *attempt >= job.spec.max_attempts {
                    // The final AttemptFinished alone implies quarantine
                    // (the explicit record may sit past the torn tail).
                    counters.quarantined += 1;
                    job.terminal = Some(quarantined_outcome(
                        *id,
                        &job.spec,
                        job.shed(),
                        *attempt,
                        job.errors.clone(),
                    ));
                } else {
                    let delay = job.spec.backoff.delay(job.spec.seed, *attempt);
                    counters.retries += 1;
                    counters.backoff_ticks += delay;
                    job.attempt_next = attempt + 1;
                    job.not_before = clock + delay;
                }
            }
            JournalRecord::Quarantined { id, attempts, shed } => {
                let job = jobs.get_mut(&id.0).ok_or_else(|| {
                    inconsistent(i, format!("quarantine of unknown job {}", id.0))
                })?;
                if job.terminal.is_some() {
                    // Normal case: the final AttemptFinished already
                    // derived this terminal.
                    duplicates_ignored += 1;
                    continue;
                }
                counters.quarantined += 1;
                job.terminal = Some(quarantined_outcome(
                    *id,
                    &job.spec,
                    *shed,
                    *attempts,
                    job.errors.clone(),
                ));
            }
            JournalRecord::Completed {
                id,
                attempts,
                shed,
                degraded,
                digest,
                stats,
            } => {
                let job = jobs.get_mut(&id.0).ok_or_else(|| {
                    inconsistent(i, format!("completion of unknown job {}", id.0))
                })?;
                if job.terminal.is_some() {
                    duplicates_ignored += 1;
                    continue;
                }
                clock += 1;
                let state = if *degraded {
                    counters.degraded += 1;
                    JobState::Degraded
                } else {
                    counters.completed += 1;
                    JobState::Completed
                };
                job.terminal = Some(JobOutcome {
                    id: *id,
                    tenant: job.spec.tenant.clone(),
                    priority: job.spec.priority,
                    state,
                    shed: *shed,
                    attempts: *attempts,
                    digest: *digest,
                    stats: Some(stats.clone()),
                    reject_reason: None,
                    errors: job.errors.clone(),
                    wall_ms: 0.0,
                });
            }
        }
    }

    // Rebook every still-live reservation before re-deriving any missing
    // decision: the historical decides are durable and must not be
    // re-judged, but a lost decision must see exactly the bookings the
    // dead process saw.
    let mut admission = AdmissionController::new(cfg.capacity_words, cfg.shed_fraction);
    for job in jobs.values() {
        if let Some(fp) = job.live_footprint() {
            admission.rebook(fp as usize);
        }
    }

    // A submission whose decision append was the fatal write is the last
    // journaled event; re-deciding it now, against the reconstructed
    // bookings, reproduces the lost verdict exactly — and re-journaling
    // it makes the log self-contained for a crash *during* recovery.
    let mut rederived_admissions: u64 = 0;
    let store = graph_store::global();
    let undecided: Vec<u64> = jobs
        .iter()
        .filter(|(_, j)| j.decision.is_none())
        .map(|(id, _)| *id)
        .collect();
    for id in undecided {
        let job = jobs.get_mut(&id).expect("undecided id just enumerated");
        let shared = store.get(&job.spec.graph);
        let mcfg = job_mpc_config(&job.spec, cfg.mode);
        let n = shared.graph.n();
        let footprint = mcfg.machines_for(n, shared.words) * mcfg.local_space(n);
        let decision = admission.decide(footprint, job.spec.priority);
        let rec = match &decision {
            AdmissionDecision::Reject { reason } => JournalRecord::Rejected {
                id: JobId(id),
                reason: reason.clone(),
            },
            AdmissionDecision::AdmitShed => JournalRecord::Shed {
                id: JobId(id),
                footprint: footprint as u64,
            },
            AdmissionDecision::Admit => JournalRecord::Admitted {
                id: JobId(id),
                footprint: footprint as u64,
            },
        };
        journal.append(&rec).map_err(RecoveryError::Journal)?;
        rederived_admissions += 1;
        match decision {
            AdmissionDecision::Reject { reason } => {
                counters.rejected += 1;
                job.decision = Some(Decision::Rejected);
                job.terminal = Some(rejected_outcome(JobId(id), &job.spec, reason));
            }
            AdmissionDecision::AdmitShed => {
                counters.admitted += 1;
                counters.shed += 1;
                job.decision = Some(Decision::Shed {
                    footprint: footprint as u64,
                });
            }
            AdmissionDecision::Admit => {
                counters.admitted += 1;
                job.decision = Some(Decision::Admit {
                    footprint: footprint as u64,
                });
            }
        }
    }

    // Assemble the scheduler state: terminal outcomes restored in place,
    // everything else re-queued at its next attempt.
    let mut outcomes: Vec<Option<JobOutcome>> = Vec::with_capacity(jobs.len());
    let mut queue: Vec<QueuedJob> = Vec::new();
    let mut restored_terminal: u64 = 0;
    for (id, job) in &mut jobs {
        match job.terminal.take() {
            Some(outcome) => {
                restored_terminal += 1;
                outcomes.push(Some(outcome));
            }
            None => {
                let footprint = match job.decision {
                    Some(Decision::Admit { footprint } | Decision::Shed { footprint }) => {
                        footprint as usize
                    }
                    _ => unreachable!("non-terminal jobs were all decided above"),
                };
                queue.push(QueuedJob {
                    id: JobId(*id),
                    spec: job.spec.clone(),
                    shed: job.shed(),
                    footprint,
                    attempt: job.attempt_next,
                    not_before: job.not_before,
                    seq: *id,
                    errors: std::mem::take(&mut job.errors),
                    started: None,
                });
                outcomes.push(None);
            }
        }
    }
    let resumed_jobs = queue.len() as u64;

    let info = RecoveryInfo {
        records_replayed: records.len() as u64,
        duplicates_ignored,
        torn_bytes_truncated,
        restored_terminal,
        resumed_jobs,
        rederived_admissions,
        replay_stats,
    };
    let state = SchedState {
        queue,
        running: 0,
        clock,
        dispatches,
        last_served,
        outcomes,
        counters,
        admission,
        journal: Some(journal),
        crashed: false,
    };
    Ok((state, info))
}

fn rejected_outcome(id: JobId, spec: &JobSpec, reason: String) -> JobOutcome {
    JobOutcome {
        id,
        tenant: spec.tenant.clone(),
        priority: spec.priority,
        state: JobState::Rejected,
        shed: false,
        attempts: 0,
        digest: 0,
        stats: None,
        reject_reason: Some(reason),
        errors: Vec::new(),
        wall_ms: 0.0,
    }
}

fn quarantined_outcome(
    id: JobId,
    spec: &JobSpec,
    shed: bool,
    attempts: u32,
    errors: Vec<String>,
) -> JobOutcome {
    JobOutcome {
        id,
        tenant: spec.tenant.clone(),
        priority: spec.priority,
        state: JobState::Quarantined,
        shed,
        attempts,
        digest: 0,
        stats: None,
        reject_reason: None,
        errors,
        wall_ms: 0.0,
    }
}
