//! Admission control on aggregate machine memory.
//!
//! Every admitted job reserves its full cluster footprint — `M × S`
//! words, where `S = n^φ` comes from the job's own space budget — for
//! its whole queued-to-completed lifetime. The controller caps the sum
//! of those reservations and applies the shedding ladder *before* the
//! hard wall: past a watermark, low-priority jobs are admitted in
//! degraded (supervised partial-output) mode; only when the cap itself
//! would be exceeded is a job refused, and then always with a reason
//! naming the numbers.
//!
//! Decisions are made at submission time, in submission order, from
//! booked state only — never from wall-clock or worker state — so a
//! fixed submission sequence admits, sheds, and rejects identically on
//! every run.

use crate::job::Priority;

/// The controller's verdict for one submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// Admitted at full service: footprint booked.
    Admit,
    /// Admitted, but downgraded to supervised partial-output mode —
    /// the overload-shedding rung. Footprint booked.
    AdmitShed,
    /// Refused; nothing booked. The reason names the budget arithmetic.
    Reject {
        /// Human-readable budget arithmetic (`needs … booked … capacity …`).
        reason: String,
    },
}

/// Books aggregate space reservations against a fixed capacity.
#[derive(Debug, Clone)]
pub struct AdmissionController {
    capacity_words: usize,
    shed_watermark: usize,
    booked_words: usize,
}

impl AdmissionController {
    /// A controller over `capacity_words` total words; bookings beyond
    /// `shed_fraction × capacity` push low-priority work onto the
    /// shedding rung. `shed_fraction` is clamped to `[0, 1]`.
    #[must_use]
    pub fn new(capacity_words: usize, shed_fraction: f64) -> Self {
        let frac = shed_fraction.clamp(0.0, 1.0);
        let watermark = (capacity_words as f64 * frac).floor() as usize;
        AdmissionController {
            capacity_words,
            shed_watermark: watermark,
            booked_words: 0,
        }
    }

    /// Decides one submission with footprint `footprint_words`, booking
    /// it on any admit.
    pub fn decide(&mut self, footprint_words: usize, priority: Priority) -> AdmissionDecision {
        let after = self.booked_words.saturating_add(footprint_words);
        if after > self.capacity_words {
            return AdmissionDecision::Reject {
                reason: format!(
                    "aggregate space budget exceeded: job needs {footprint_words} words, \
                     {booked} already booked, capacity {cap}",
                    booked = self.booked_words,
                    cap = self.capacity_words,
                ),
            };
        }
        self.booked_words = after;
        if after > self.shed_watermark && priority == Priority::Low {
            AdmissionDecision::AdmitShed
        } else {
            AdmissionDecision::Admit
        }
    }

    /// Returns a completed (or quarantined) job's reservation.
    pub fn release(&mut self, footprint_words: usize) {
        self.booked_words = self.booked_words.saturating_sub(footprint_words);
    }

    /// Re-books a reservation whose admission was already decided — the
    /// journal-replay path ([`crate::recovery`]) restoring bookings for
    /// jobs still live at the crash. Unconditional by design: the
    /// original `decide` call is durable, so re-judging it against
    /// capacity could only diverge from history.
    pub fn rebook(&mut self, footprint_words: usize) {
        self.booked_words = self.booked_words.saturating_add(footprint_words);
    }

    /// Currently booked words.
    #[must_use]
    pub fn booked_words(&self) -> usize {
        self.booked_words
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity_words(&self) -> usize {
        self.capacity_words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn books_admits_and_rejects_with_arithmetic_in_the_reason() {
        let mut ac = AdmissionController::new(100, 1.0);
        assert_eq!(ac.decide(60, Priority::Normal), AdmissionDecision::Admit);
        assert_eq!(ac.booked_words(), 60);
        match ac.decide(50, Priority::High) {
            AdmissionDecision::Reject { reason } => {
                assert!(reason.contains("needs 50"), "{reason}");
                assert!(reason.contains("60 already booked"), "{reason}");
                assert!(reason.contains("capacity 100"), "{reason}");
            }
            other => panic!("expected reject, got {other:?}"),
        }
        // A rejection books nothing.
        assert_eq!(ac.booked_words(), 60);
        assert_eq!(ac.decide(40, Priority::Low), AdmissionDecision::Admit);
    }

    #[test]
    fn sheds_low_priority_past_the_watermark_but_not_normal() {
        let mut ac = AdmissionController::new(100, 0.5);
        assert_eq!(ac.decide(40, Priority::Low), AdmissionDecision::Admit);
        // 40 booked; +20 crosses the watermark (50).
        assert_eq!(ac.decide(20, Priority::Low), AdmissionDecision::AdmitShed);
        assert_eq!(ac.decide(20, Priority::Normal), AdmissionDecision::Admit);
        assert_eq!(ac.decide(10, Priority::High), AdmissionDecision::Admit);
    }

    #[test]
    fn rebook_restores_reservations_without_rejudging() {
        let mut ac = AdmissionController::new(100, 1.0);
        ac.rebook(80);
        assert_eq!(ac.booked_words(), 80);
        // Even past capacity: the historical decide already admitted it.
        ac.rebook(80);
        assert_eq!(ac.booked_words(), 160);
        assert!(matches!(
            ac.decide(1, Priority::Normal),
            AdmissionDecision::Reject { .. }
        ));
    }

    #[test]
    fn release_reopens_capacity() {
        let mut ac = AdmissionController::new(100, 1.0);
        assert_eq!(ac.decide(100, Priority::Normal), AdmissionDecision::Admit);
        assert!(matches!(
            ac.decide(1, Priority::Normal),
            AdmissionDecision::Reject { .. }
        ));
        ac.release(100);
        assert_eq!(ac.decide(1, Priority::Normal), AdmissionDecision::Admit);
        // Releasing more than booked saturates at zero.
        ac.release(usize::MAX);
        assert_eq!(ac.booked_words(), 0);
    }
}
