//! Shared graph materialization: one built graph and one CSR spine per
//! distinct [`GraphSpec`], no matter how many jobs reference it.
//!
//! The store is the service-side face of the content-keyed cache family
//! from `csmpc-mpc`: specs are compared exactly (they are pure data), a
//! hit hands back the same [`Arc`]'d immutable [`SharedGraph`] every
//! caller sees, and the CSR spine inside it comes from the process-wide
//! [`csmpc_mpc::ball_cache::csr_global`] cache — so a fleet of jobs on
//! the same topology pays for one adjacency spine total, across the
//! store *and* ball collection.

use crate::job::GraphSpec;
use csmpc_graph::{CsrAdjacency, Graph};
use csmpc_mpc::ball_cache::csr_global;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// One materialized graph, shared read-only between concurrent jobs.
#[derive(Debug)]
pub struct SharedGraph {
    /// The built graph.
    pub graph: Graph,
    /// The shared CSR adjacency spine (from the process-wide CSR cache).
    pub csr: Arc<CsrAdjacency>,
    /// `graph_words(graph)` — the input-size figure admission works from.
    pub words: usize,
}

/// A bounded LRU store of [`SharedGraph`]s keyed by exact [`GraphSpec`].
#[derive(Debug)]
pub struct GraphStore {
    entries: Mutex<Vec<(GraphSpec, Arc<SharedGraph>)>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl GraphStore {
    /// An empty store holding at most `capacity` graphs.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        GraphStore {
            entries: Mutex::new(Vec::new()),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Returns the shared materialization of `spec`, building it on a
    /// miss. Hits move to the front (most recently used).
    #[must_use]
    pub fn get(&self, spec: &GraphSpec) -> Arc<SharedGraph> {
        {
            let mut entries = self.entries.lock().expect("graph store poisoned");
            if let Some(pos) = entries.iter().position(|(k, _)| k == spec) {
                let entry = entries.remove(pos);
                let shared = Arc::clone(&entry.1);
                entries.insert(0, entry);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return shared;
            }
        }
        let graph = spec.build();
        let words = csmpc_mpc::graph_words(&graph);
        let csr = csr_global().get(&graph);
        let shared = Arc::new(SharedGraph { graph, csr, words });
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut entries = self.entries.lock().expect("graph store poisoned");
        // A racing thread may have built the same spec; keep one copy.
        if let Some(pos) = entries.iter().position(|(k, _)| k == spec) {
            return Arc::clone(&entries[pos].1);
        }
        entries.insert(0, (*spec, Arc::clone(&shared)));
        entries.truncate(self.capacity);
        shared
    }

    /// `(hits, misses)` so far.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Number of stored graphs.
    ///
    /// # Panics
    ///
    /// Panics if the store mutex was poisoned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.lock().expect("graph store poisoned").len()
    }

    /// `true` when nothing is stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The process-wide store used by the scheduler.
pub fn global() -> &'static GraphStore {
    static GLOBAL: OnceLock<GraphStore> = OnceLock::new();
    GLOBAL.get_or_init(|| GraphStore::with_capacity(32))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_spec_shares_one_graph_and_one_spine() {
        let store = GraphStore::with_capacity(4);
        let a = store.get(&GraphSpec::Cycle { n: 12 });
        let b = store.get(&GraphSpec::Cycle { n: 12 });
        assert!(Arc::ptr_eq(&a, &b), "store must share materializations");
        assert!(Arc::ptr_eq(&a.csr, &b.csr));
        assert_eq!(store.stats(), (1, 1));
        assert_eq!(a.words, csmpc_mpc::graph_words(&a.graph));
    }

    #[test]
    fn distinct_specs_do_not_collide_and_lru_evicts() {
        let store = GraphStore::with_capacity(2);
        let a = store.get(&GraphSpec::Cycle { n: 8 });
        let _b = store.get(&GraphSpec::Path { n: 8 });
        let _c = store.get(&GraphSpec::TwoCycles { n: 8 });
        assert_eq!(store.len(), 2, "capacity bound holds");
        // `a` was least recently used — evicted; refetch rebuilds.
        let a2 = store.get(&GraphSpec::Cycle { n: 8 });
        assert!(!Arc::ptr_eq(&a, &a2));
        assert_eq!(a.graph.n(), a2.graph.n());
    }

    #[test]
    fn csr_spine_is_shared_across_identical_topologies() {
        let store = GraphStore::with_capacity(8);
        // Same topology through different spec paths: the store entries
        // differ, but the topology-keyed CSR cache unifies the spine.
        let cyc = store.get(&GraphSpec::Cycle { n: 10 });
        let direct = csr_global().get(&cyc.graph);
        assert!(Arc::ptr_eq(&cyc.csr, &direct));
    }
}
