//! Job vocabulary: what a tenant submits, and how one attempt runs.
//!
//! A [`JobSpec`] is entirely *data* — workload, graph recipe, seed,
//! fault recipe, space budget, deadline, retry policy. Everything an
//! attempt does is derived from the spec deterministically, so the
//! service can replay, retry, and fingerprint jobs without hidden state.

use crate::backoff::BackoffPolicy;
use csmpc_algorithms::amplify::StableOneShotIs;
use csmpc_algorithms::mpc_edge::BallGreedyColoringMpc;
use csmpc_algorithms::MpcVertexAlgorithm;
use csmpc_graph::rng::Seed;
use csmpc_graph::{generators, Graph};
use csmpc_mpc::{Cluster, DistributedGraph, FaultPlan, MpcError};

/// Service-assigned job identity: the index of the submission, dense
/// from zero, so reports line up positionally with the submit order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

/// Scheduling priority. Ordering is semantic: `Low < Normal < High`.
/// Low-priority jobs are the first rung of the shedding ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Sheddable before anything else degrades.
    Low,
    /// Default.
    Normal,
    /// Dispatched ahead of everything at the fairness boundary.
    High,
}

impl Priority {
    /// Stable one-byte tag for the journal codec
    /// ([`crate::journal::JournalRecord`]). Tags are wire format: they
    /// must never be renumbered, only extended.
    pub(crate) fn tag(self) -> u8 {
        match self {
            Priority::Low => 0,
            Priority::Normal => 1,
            Priority::High => 2,
        }
    }

    /// Inverse of [`Priority::tag`]; `None` for an unknown byte (a
    /// corrupt or future-format journal).
    pub(crate) fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(Priority::Low),
            1 => Some(Priority::Normal),
            2 => Some(Priority::High),
            _ => None,
        }
    }
}

/// A deterministic graph recipe. Specs are *content*, not graph handles:
/// two jobs with equal specs share one built graph (and one CSR spine)
/// through the [`crate::GraphStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphSpec {
    /// `generators::cycle(n)`.
    Cycle {
        /// Node count.
        n: usize,
    },
    /// `generators::path(n)`.
    Path {
        /// Node count.
        n: usize,
    },
    /// `generators::two_cycles(n)` — two components, the stability
    /// workhorse.
    TwoCycles {
        /// Total nodes, split into two cycles (even, ≥ 6).
        n: usize,
    },
    /// `generators::random_tree(n, seed)`.
    RandomTree {
        /// Node count.
        n: usize,
        /// Generator seed (part of the content key).
        seed: u64,
    },
}

impl GraphSpec {
    /// Materializes the recipe. Pure: equal specs build equal graphs.
    #[must_use]
    pub fn build(&self) -> Graph {
        match *self {
            GraphSpec::Cycle { n } => generators::cycle(n),
            GraphSpec::Path { n } => generators::path(n),
            GraphSpec::TwoCycles { n } => generators::two_cycles(n),
            GraphSpec::RandomTree { n, seed } => generators::random_tree(n, Seed(seed)),
        }
    }

    /// Node count without building the graph.
    #[must_use]
    pub fn nodes(&self) -> usize {
        match *self {
            GraphSpec::Cycle { n }
            | GraphSpec::Path { n }
            | GraphSpec::TwoCycles { n }
            | GraphSpec::RandomTree { n, .. } => n,
        }
    }
}

/// What the job computes. Labels are normalized to `u64` so outcomes of
/// different workloads digest and compare uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// One-shot component-stable Luby MIS step (randomized, seeded).
    LubyMis,
    /// Connected-component labels via the accounted primitive.
    CcLabels,
    /// `(Δ+1)`-coloring by greedy simulation inside collected balls.
    BallColoring {
        /// Ball radius to collect.
        radius: usize,
    },
}

impl Workload {
    /// Short reporting name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Workload::LubyMis => "luby-mis",
            Workload::CcLabels => "cc-labels",
            Workload::BallColoring { .. } => "ball-coloring",
        }
    }
}

/// A seeded fault recipe, instantiated per attempt against the job's
/// actual machine count. Equal specs always instantiate equal plans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultSpec {
    /// Crash events to scatter.
    pub crashes: usize,
    /// Straggler events to scatter.
    pub stragglers: usize,
    /// Round horizon the events are scattered over.
    pub horizon: usize,
    /// Per-mille checksum corruption on delivered envelopes.
    pub corrupt_per_mille: u16,
    /// Plan seed (independent of the job's algorithm seed).
    pub seed: u64,
}

impl FaultSpec {
    /// Builds the concrete plan for a cluster of `machines` machines.
    pub fn plan_for(&self, machines: usize) -> FaultPlan {
        FaultPlan::random(
            Seed(self.seed),
            machines,
            self.horizon,
            self.crashes,
            self.stragglers,
        )
        .with_corruption(self.corrupt_per_mille)
    }
}

/// Everything the service needs to run (and re-run) one job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Owning tenant, the fairness unit.
    pub tenant: String,
    /// Scheduling priority.
    pub priority: Priority,
    /// What to compute.
    pub workload: Workload,
    /// On which graph.
    pub graph: GraphSpec,
    /// Shared algorithm seed: same seed ⇒ bit-identical output.
    pub seed: Seed,
    /// Optional fault recipe; `None` runs fault-free.
    pub faults: Option<FaultSpec>,
    /// Space exponent `φ` for this job's cluster (`S = n^φ`).
    pub phi: f64,
    /// Machine-space floor (ball workloads need head-room on test-scale
    /// inputs; see [`csmpc_mpc::MpcConfig::min_space`]).
    pub min_space: usize,
    /// Ledger-round deadline armed via
    /// [`Cluster::arm_job_deadline`]; `None` = unlimited.
    pub deadline_rounds: Option<usize>,
    /// Total attempt budget (first run + retries) before quarantine.
    pub max_attempts: u32,
    /// Job-level retry backoff schedule.
    pub backoff: BackoffPolicy,
    /// In-run recovery retry budget granted to attempt 1; later attempts
    /// escalate it by one per retry, so a plan that exhausts the first
    /// budget can still complete under a bounded number of job retries.
    pub recovery_retries: usize,
}

impl JobSpec {
    /// A fault-free, undeadlined spec with service defaults — the base
    /// tests and the soak generator specialize from here.
    #[must_use]
    pub fn basic(tenant: &str, workload: Workload, graph: GraphSpec, seed: Seed) -> Self {
        JobSpec {
            tenant: tenant.to_owned(),
            priority: Priority::Normal,
            workload,
            graph,
            seed,
            faults: None,
            phi: 0.5,
            min_space: 64,
            deadline_rounds: None,
            max_attempts: 3,
            backoff: BackoffPolicy::default(),
            recovery_retries: 1,
        }
    }
}

/// Runs `workload` on `g`, charging `cluster`, with every label
/// normalized to `u64`. This is the service-layer charged entry point:
/// all wire activity below it flows through the accounted primitives.
///
/// # Errors
///
/// Any [`MpcError`] raised by the primitives — space violations, crash
/// budgets, armed job deadlines.
pub fn run_job(
    workload: &Workload,
    g: &Graph,
    cluster: &mut Cluster,
) -> Result<Vec<u64>, MpcError> {
    match *workload {
        Workload::LubyMis => Ok(StableOneShotIs
            .run(g, cluster)?
            .into_iter()
            .map(u64::from)
            .collect()),
        Workload::CcLabels => {
            let dg = DistributedGraph::distribute(g, cluster)?;
            let (labels, _rounds) = dg.cc_labels(cluster)?;
            Ok(labels)
        }
        Workload::BallColoring { radius } => Ok(BallGreedyColoringMpc { radius }
            .run(g, cluster)?
            .into_iter()
            .map(|c| c as u64)
            .collect()),
    }
}

/// FNV-1a over a full label vector (present-or-salvaged encoding), the
/// per-job output fingerprint: bit-identical outputs ⇒ equal digests.
#[must_use]
pub fn labels_digest(labels: &[Option<u64>]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |word: u64| {
        for b in word.to_le_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for l in labels {
        match l {
            Some(v) => {
                mix(1);
                mix(*v);
            }
            None => mix(0),
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use csmpc_mpc::MpcConfig;

    fn cluster_for(g: &Graph, seed: Seed) -> Cluster {
        let cfg = MpcConfig {
            min_space: 64,
            ..MpcConfig::with_phi(0.5)
        };
        Cluster::new(cfg, g.n(), csmpc_mpc::graph_words(g), seed)
    }

    #[test]
    fn graph_specs_build_expected_shapes() {
        assert_eq!(GraphSpec::Cycle { n: 8 }.build().n(), 8);
        assert_eq!(GraphSpec::TwoCycles { n: 12 }.build().n(), 12);
        assert_eq!(GraphSpec::TwoCycles { n: 12 }.nodes(), 12);
        let t1 = GraphSpec::RandomTree { n: 20, seed: 5 }.build();
        let t2 = GraphSpec::RandomTree { n: 20, seed: 5 }.build();
        assert_eq!(t1.n(), t2.n());
        assert_eq!(t1.m(), 19);
    }

    #[test]
    fn run_job_normalizes_every_workload_to_u64() {
        let g = GraphSpec::TwoCycles { n: 8 }.build();
        for w in [
            Workload::LubyMis,
            Workload::CcLabels,
            Workload::BallColoring { radius: 2 },
        ] {
            let mut cl = cluster_for(&g, Seed(9));
            let out = run_job(&w, &g, &mut cl).unwrap();
            assert_eq!(out.len(), g.n(), "{w:?}");
            assert!(cl.stats().rounds > 0, "{w:?} charged nothing");
        }
    }

    #[test]
    fn digest_separates_presence_from_value() {
        let a = labels_digest(&[Some(0), None]);
        let b = labels_digest(&[None, Some(0)]);
        let c = labels_digest(&[Some(0), Some(0)]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, labels_digest(&[Some(0), None]));
    }

    #[test]
    fn priority_tags_roundtrip_and_reject_unknown_bytes() {
        for p in [Priority::Low, Priority::Normal, Priority::High] {
            assert_eq!(Priority::from_tag(p.tag()), Some(p));
        }
        assert_eq!(Priority::from_tag(9), None);
    }

    #[test]
    fn fault_spec_instantiates_identically() {
        let f = FaultSpec {
            crashes: 2,
            stragglers: 1,
            horizon: 6,
            corrupt_per_mille: 30,
            seed: 77,
        };
        assert_eq!(f.plan_for(8), f.plan_for(8));
        assert_eq!(f.plan_for(8).corrupt_per_mille(), 30);
    }
}
