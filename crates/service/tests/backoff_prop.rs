//! Property tests for the job-level backoff schedule: monotone
//! non-decreasing, saturating without overflow, and a pure function of
//! `(seed, attempt)` — the three contract lines of [`BackoffPolicy`].

use csmpc_graph::rng::Seed;
use csmpc_service::BackoffPolicy;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn delays_are_monotone_non_decreasing(
        seed in 0u64..1_000_000,
        base in 1u64..1_000,
        cap in 1u64..1_000_000,
    ) {
        let p = BackoffPolicy { base, cap };
        let mut prev = 0u64;
        for retry in 0..200u32 {
            let d = p.delay(Seed(seed), retry);
            prop_assert!(
                d >= prev,
                "delay({retry}) = {d} < delay({}) = {prev} for base={base} cap={cap}",
                retry.saturating_sub(1)
            );
            prev = d;
        }
    }

    #[test]
    fn delays_saturate_at_the_cap_without_overflow(
        seed in 0u64..1_000_000,
        base in 1u64..1_000,
        cap in 1u64..1_000_000,
    ) {
        let p = BackoffPolicy { base, cap };
        let ceiling = cap.max(base);
        for retry in [0u32, 1, 5, 62, 63, 64, 65, 1000, u32::MAX - 1, u32::MAX] {
            let d = p.delay(Seed(seed), retry);
            prop_assert!(d <= ceiling, "delay({retry}) = {d} exceeds cap {ceiling}");
        }
        // Far past every doubling horizon the schedule is pinned to
        // the ceiling exactly — jitter-free saturation.
        prop_assert_eq!(p.delay(Seed(seed), 5_000), ceiling);
        prop_assert_eq!(p.delay(Seed(seed), u32::MAX), ceiling);
    }

    #[test]
    fn schedule_is_a_pure_function_of_seed_and_attempt(
        seed in 0u64..1_000_000,
        base in 1u64..1_000,
        cap in 1u64..1_000_000,
        retry in 0u32..500,
    ) {
        let p = BackoffPolicy { base, cap };
        let a = p.delay(Seed(seed), retry);
        // Re-evaluating — including from a fresh policy value — never
        // drifts: no hidden state, no clock, no thread identity.
        let b = BackoffPolicy { base, cap }.delay(Seed(seed), retry);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn degenerate_policies_are_floored_not_panicking(
        seed in 0u64..1_000_000,
        retry in 0u32..100,
    ) {
        // base 0 is floored to 1; cap below base is floored to base.
        let p = BackoffPolicy { base: 0, cap: 0 };
        let d = p.delay(Seed(seed), retry);
        prop_assert!(d <= 1);
        let q = BackoffPolicy { base: 100, cap: 1 };
        prop_assert!(retry == 0 || q.delay(Seed(seed), retry) == 100);
    }
}
