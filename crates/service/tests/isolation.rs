//! Fault isolation between co-scheduled jobs: injected failures produce
//! only per-job retry/quarantine/Degraded outcomes — a healthy job's
//! output *and its `Stats` charges* are bit-identical whether it runs
//! alone or sandwiched between crashing, straggling, corrupted, and
//! deadline-poisoned neighbors.

use csmpc_graph::rng::Seed;
use csmpc_mpc::ParallelismMode;
use csmpc_service::{
    FaultSpec, GraphSpec, JobService, JobSpec, JobState, Priority, ServiceConfig, Workload,
};

fn healthy(tenant: &str, seed: u64) -> JobSpec {
    JobSpec::basic(
        tenant,
        Workload::CcLabels,
        GraphSpec::TwoCycles { n: 16 },
        Seed(seed),
    )
}

fn faulty(tenant: &str, seed: u64) -> JobSpec {
    let mut spec = JobSpec::basic(
        tenant,
        Workload::LubyMis,
        GraphSpec::Cycle { n: 16 },
        Seed(seed),
    );
    spec.faults = Some(FaultSpec {
        crashes: 2,
        stragglers: 2,
        horizon: 5,
        corrupt_per_mille: 50,
        seed: 4000 + seed,
    });
    spec.recovery_retries = 3;
    spec
}

fn poisoned(tenant: &str, seed: u64) -> JobSpec {
    let mut spec = healthy(tenant, seed);
    spec.deadline_rounds = Some(1);
    spec.max_attempts = 2;
    spec
}

fn service(workers: usize) -> JobService {
    JobService::new(ServiceConfig {
        workers,
        capacity_words: 1 << 22,
        shed_fraction: 1.0,
        mode: ParallelismMode::default(),
    })
}

#[test]
fn healthy_jobs_unchanged_next_to_faulty_and_poisoned_neighbors() {
    // Solo baselines: each healthy job alone in its own service.
    let solo: Vec<_> = (0..4u64)
        .map(|i| {
            let report = service(1).run_batch(vec![healthy("solo", i)]);
            report.outcomes.into_iter().next().unwrap()
        })
        .collect();

    // The same four healthy jobs co-scheduled with chaos.
    let mut batch = Vec::new();
    for i in 0..4u64 {
        batch.push(healthy("solo", i));
        batch.push(faulty("chaos", i));
        batch.push(poisoned("chaos", 50 + i));
    }
    let report = service(4).run_batch(batch);

    for (i, base) in solo.iter().enumerate() {
        let co = &report.outcomes[3 * i]; // healthy jobs sit at 0, 3, 6, 9
        assert_eq!(co.state, JobState::Completed, "healthy job {i}: {co:?}");
        assert_eq!(co.digest, base.digest, "healthy job {i} output perturbed");
        assert_eq!(
            co.stats, base.stats,
            "healthy job {i} Stats charges perturbed by co-scheduled faults"
        );
        assert_eq!(co.attempts, 1, "healthy job {i} should not retry");
    }

    // The chaos jobs failed *as themselves*: every poisoned job is
    // quarantined with history, no healthy job absorbed their state.
    for i in 0..4 {
        let p = &report.outcomes[3 * i + 2];
        assert_eq!(p.state, JobState::Quarantined, "{p:?}");
        assert_eq!(p.attempts, 2);
        assert!(!p.errors.is_empty());
    }
    assert_eq!(report.counters.quarantined, 4);
    assert_eq!(report.counters.deadline_failures, 8);
}

#[test]
fn shed_job_with_faults_degrades_while_full_service_twin_completes() {
    // Two identical fault-carrying jobs; the low-priority one is shed
    // (watermark 0) and must degrade to partial output instead of
    // burning attempts, while queue peers stay healthy.
    let svc = JobService::new(ServiceConfig {
        workers: 2,
        capacity_words: 1 << 22,
        shed_fraction: 0.0,
        mode: ParallelismMode::default(),
    });
    let mut shed = faulty("tenant", 3);
    shed.priority = Priority::Low;
    shed.recovery_retries = 0; // exhaust in-run recovery fast
    shed.max_attempts = 1; // supervised mode must still terminate it
    let report = svc.run_batch(vec![shed, healthy("tenant", 9)]);
    let s = &report.outcomes[0];
    assert!(s.shed);
    assert!(
        matches!(s.state, JobState::Completed | JobState::Degraded),
        "shed jobs terminate via supervised degrade, not quarantine: {s:?}"
    );
    assert_eq!(report.outcomes[1].state, JobState::Completed);
}

#[test]
fn tenant_burst_cannot_starve_another_tenant() {
    // One tenant floods 12 jobs, another submits 2; with fairness the
    // small tenant's jobs dispatch within the first few slots. We can't
    // observe dispatch order directly, but all jobs must terminate and
    // the small tenant's outputs must match its solo baselines.
    let solo_a = service(1).run_batch(vec![healthy("small", 100)]);
    let mut batch: Vec<_> = (0..12u64).map(|i| healthy("flood", i)).collect();
    batch.insert(5, healthy("small", 100));
    let report = service(3).run_batch(batch);
    assert!(report
        .outcomes
        .iter()
        .all(|o| o.state == JobState::Completed));
    assert_eq!(report.outcomes[5].digest, solo_a.outcomes[0].digest);
    assert_eq!(report.outcomes[5].stats, solo_a.outcomes[0].stats);
}
