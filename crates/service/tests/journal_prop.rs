//! Adversarial coverage for the journal codec and recovery scan:
//! arbitrary [`JobSpec`]s roundtrip bit-exactly, truncating the log at
//! *every* byte offset recovers a clean record prefix, any single
//! bit-flip in an interior record body is detected as hard corruption,
//! and recovery is idempotent however the tail was torn.

use csmpc_graph::rng::Seed;
use csmpc_mpc::Stats;
use csmpc_service::journal::FRAME_HEADER;
use csmpc_service::{
    FaultSpec, GraphSpec, JobId, JobSpec, Journal, JournalError, JournalRecord, Priority, Workload,
};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static CASE: AtomicU64 = AtomicU64::new(0);

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "csmpc_jprop_{}_{}_{name}.bin",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Deterministically expands 16 random words into a [`JobSpec`],
/// stressing every codec branch: unicode (and empty) tenants, every
/// priority/workload/graph tag, optional faults and deadlines, and the
/// full numeric range of the retry knobs. `phi` stays finite so spec
/// equality (`f64: PartialEq`) is meaningful.
fn spec_from_words(w: &[u64]) -> JobSpec {
    let tenants = ["", "acme", "tenant-β", "ümlaut/株", "a b\tc", "0123456789"];
    let priority = match w[0] % 3 {
        0 => Priority::Low,
        1 => Priority::Normal,
        _ => Priority::High,
    };
    let workload = match w[1] % 3 {
        0 => Workload::LubyMis,
        1 => Workload::CcLabels,
        _ => Workload::BallColoring {
            radius: (w[1] >> 2) as usize % 16,
        },
    };
    let n = 6 + (w[2] >> 8) as usize % 100_000;
    let graph = match w[2] % 4 {
        0 => GraphSpec::Cycle { n },
        1 => GraphSpec::Path { n },
        2 => GraphSpec::TwoCycles { n },
        _ => GraphSpec::RandomTree { n, seed: w[3] },
    };
    let faults = if w[4].is_multiple_of(2) {
        None
    } else {
        Some(FaultSpec {
            crashes: (w[5] % 8) as usize,
            stragglers: (w[5] >> 8) as usize % 8,
            horizon: 1 + (w[5] >> 16) as usize % 64,
            corrupt_per_mille: (w[6] % 1001) as u16,
            seed: w[7],
        })
    };
    JobSpec {
        tenant: tenants[(w[8] % tenants.len() as u64) as usize].to_owned(),
        priority,
        workload,
        graph,
        seed: Seed(w[9]),
        faults,
        phi: 0.05 + (w[10] % 1000) as f64 * 0.0009,
        min_space: 1 + (w[11] % 1_000_000) as usize,
        deadline_rounds: w[12]
            .is_multiple_of(2)
            .then_some(1 + (w[12] >> 8) as usize % 10_000),
        max_attempts: 1 + (w[13] % 49) as u32,
        backoff: csmpc_service::BackoffPolicy {
            base: w[14],
            cap: w[14].rotate_left(17),
        },
        recovery_retries: (w[15] % 20) as usize,
    }
}

fn arb_spec() -> impl Strategy<Value = JobSpec> {
    proptest::collection::vec(0u64..=u64::MAX, 16..17).prop_map(|w| spec_from_words(&w))
}

/// A fixed record sequence with enough shape variety (spec payloads,
/// strings, stats blocks) to exercise every frame boundary.
fn sample_log() -> Vec<JournalRecord> {
    let mut spec = JobSpec::basic(
        "tenant-β",
        Workload::BallColoring { radius: 3 },
        GraphSpec::RandomTree { n: 40, seed: 11 },
        Seed(5),
    );
    spec.faults = Some(FaultSpec {
        crashes: 2,
        stragglers: 1,
        horizon: 9,
        corrupt_per_mille: 12,
        seed: 77,
    });
    spec.deadline_rounds = Some(64);
    vec![
        JournalRecord::Submitted { id: JobId(0), spec },
        JournalRecord::Admitted {
            id: JobId(0),
            footprint: 4096,
        },
        JournalRecord::AttemptStarted {
            id: JobId(0),
            attempt: 1,
        },
        JournalRecord::AttemptFinished {
            id: JobId(0),
            attempt: 1,
            deadline: false,
            error: "attempt 1: machine 3 failed at round 4".to_string(),
        },
        JournalRecord::AttemptStarted {
            id: JobId(0),
            attempt: 2,
        },
        JournalRecord::Completed {
            id: JobId(0),
            attempts: 2,
            shed: false,
            degraded: true,
            digest: 0x1234_5678_9ABC_DEF0,
            stats: Stats {
                rounds: 17,
                total_words: 99_000,
                recovery_rounds: 3,
                recovery_words: 1200,
                corrupted_detected: 2,
                ..Stats::default()
            },
        },
    ]
}

fn write_log(records: &[JournalRecord], path: &std::path::Path) -> Vec<u8> {
    let mut j = Journal::create(path).unwrap();
    for rec in records {
        j.append(rec).unwrap();
    }
    drop(j);
    std::fs::read(path).unwrap()
}

/// How many whole frames fit in a `len`-byte prefix of `bytes`.
fn frames_within(bytes: &[u8], len: usize) -> usize {
    let mut pos = 0usize;
    let mut count = 0usize;
    while pos + FRAME_HEADER <= len {
        let flen = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
            as usize;
        if pos + FRAME_HEADER + flen > len {
            break;
        }
        pos += FRAME_HEADER + flen;
        count += 1;
    }
    count
}

#[test]
fn truncation_at_every_byte_offset_recovers_a_clean_prefix() {
    let records = sample_log();
    let path = tmp("offsets");
    let bytes = write_log(&records, &path);
    for cut in 0..=bytes.len() {
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let log = Journal::open_for_recovery(&path)
            .unwrap_or_else(|e| panic!("cut at byte {cut}: recovery refused: {e}"));
        let expect = frames_within(&bytes, cut);
        assert_eq!(
            log.records.len(),
            expect,
            "cut at byte {cut}: wrong surviving prefix"
        );
        assert_eq!(log.records[..], records[..expect], "cut at byte {cut}");
        // Idempotence: the truncation wrote back exactly the clean prefix.
        drop(log);
        let again = Journal::open_for_recovery(&path).unwrap();
        assert_eq!(again.records[..], records[..expect], "cut {cut}, 2nd pass");
        assert_eq!(again.torn_bytes_truncated, 0, "cut {cut}: not idempotent");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn every_single_bit_flip_in_an_interior_body_is_detected() {
    let records = sample_log();
    let path = tmp("bitflip");
    let bytes = write_log(&records, &path);
    // First record's payload: every bit of the body, one flip at a time.
    let len0 = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
    for byte in FRAME_HEADER..FRAME_HEADER + len0 {
        for bit in 0..8 {
            let mut damaged = bytes.clone();
            damaged[byte] ^= 1 << bit;
            std::fs::write(&path, &damaged).unwrap();
            match Journal::open_for_recovery(&path) {
                Err(JournalError::Corrupt { offset, .. }) => {
                    assert_eq!(offset, 0, "flip at byte {byte} bit {bit}")
                }
                other => {
                    panic!("flip at byte {byte} bit {bit}: expected hard corruption, got {other:?}")
                }
            }
        }
    }
    std::fs::remove_file(&path).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arbitrary_specs_roundtrip_bit_exactly(spec in arb_spec()) {
        let rec = JournalRecord::Submitted { id: JobId(3), spec };
        let decoded = JournalRecord::decode(&rec.encode());
        prop_assert_eq!(decoded.as_ref(), Ok(&rec));
    }

    #[test]
    fn arbitrary_specs_survive_a_disk_roundtrip(spec in arb_spec()) {
        let path = tmp("disk");
        let rec = JournalRecord::Submitted { id: JobId(0), spec };
        let mut j = Journal::create(&path).unwrap();
        j.append(&rec).unwrap();
        drop(j);
        let log = Journal::open_for_recovery(&path).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(&log.records[..], std::slice::from_ref(&rec));
        prop_assert_eq!(log.torn_bytes_truncated, 0);
    }

    #[test]
    fn recovery_is_idempotent_under_arbitrary_tears(
        spec in arb_spec(),
        keep_frames in 0usize..4,
        tear in 0usize..40,
    ) {
        // A log of four spec-bearing records, torn somewhere inside the
        // (keep_frames+1)-th frame: double recovery converges.
        let path = tmp("tears");
        let records: Vec<JournalRecord> = (0..4)
            .map(|i| JournalRecord::Submitted { id: JobId(i), spec: spec.clone() })
            .collect();
        let bytes = write_log(&records, &path);
        let frame = bytes.len() / 4;
        let cut = (keep_frames * frame + tear.min(frame.saturating_sub(1))).min(bytes.len());
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let first = Journal::open_for_recovery(&path).unwrap();
        let survivors = first.records.len();
        prop_assert_eq!(&first.records[..], &records[..survivors]);
        drop(first);
        let second = Journal::open_for_recovery(&path).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(&second.records[..], &records[..survivors]);
        prop_assert_eq!(second.torn_bytes_truncated, 0);
    }
}
