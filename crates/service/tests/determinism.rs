//! The concurrent-scheduling determinism gate: the same job batch, the
//! same seeds, produces bit-identical per-job outputs regardless of
//! worker count or interleaving — the service-level extension of the
//! engine's sequential-vs-parallel equivalence suites.

use csmpc_graph::rng::Seed;
use csmpc_mpc::ParallelismMode;
use csmpc_service::{
    FaultSpec, GraphSpec, JobService, JobSpec, Priority, ServiceConfig, ServiceReport, Workload,
};

/// A mixed batch: three tenants, three workloads, three graph shapes,
/// fault plans on a third of the jobs, a deadline here and there.
fn mixed_batch() -> Vec<JobSpec> {
    let mut specs = Vec::new();
    for i in 0..18u64 {
        let graph = match i % 3 {
            0 => GraphSpec::Cycle { n: 16 },
            1 => GraphSpec::TwoCycles { n: 16 },
            _ => GraphSpec::RandomTree { n: 24, seed: 7 },
        };
        let workload = match i % 3 {
            0 => Workload::LubyMis,
            1 => Workload::CcLabels,
            _ => Workload::BallColoring { radius: 2 },
        };
        let mut spec = JobSpec::basic(
            ["alpha", "beta", "gamma"][(i % 3) as usize],
            workload,
            graph,
            Seed(i),
        );
        spec.priority = match i % 4 {
            0 => Priority::Low,
            3 => Priority::High,
            _ => Priority::Normal,
        };
        if i % 3 == 1 {
            spec.faults = Some(FaultSpec {
                crashes: 1,
                stragglers: 1,
                horizon: 6,
                corrupt_per_mille: 20,
                seed: 100 + i,
            });
            spec.recovery_retries = 4;
        }
        if i % 7 == 6 {
            spec.deadline_rounds = Some(1); // a poison job per ~7
        }
        specs.push(spec);
    }
    specs
}

fn run_with(workers: usize, mode: ParallelismMode) -> ServiceReport {
    let svc = JobService::new(ServiceConfig {
        workers,
        shed_fraction: 0.6,
        capacity_words: 1 << 22,
        mode,
    });
    svc.run_batch(mixed_batch())
}

#[test]
fn same_batch_same_seeds_bit_identical_across_runs_and_worker_counts() {
    let base = run_with(4, ParallelismMode::default());
    // Outcomes cover every job and every digest is reproducible.
    assert_eq!(base.outcomes.len(), 18);
    for workers in [1, 2, 4, 8] {
        let other = run_with(workers, ParallelismMode::default());
        assert_eq!(
            other.fingerprint(),
            base.fingerprint(),
            "workers={workers} diverged:\n{:#?}\nvs\n{:#?}",
            other.counters,
            base.counters
        );
        for (a, b) in base.outcomes.iter().zip(&other.outcomes) {
            assert_eq!(a.digest, b.digest, "job {:?} digest drifted", a.id);
            assert_eq!(a.state, b.state, "job {:?} state drifted", a.id);
            assert_eq!(a.attempts, b.attempts, "job {:?} attempts drifted", a.id);
            assert_eq!(a.stats, b.stats, "job {:?} stats drifted", a.id);
        }
        assert_eq!(other.counters, base.counters);
    }
}

#[test]
fn engine_parallelism_mode_is_invisible_to_the_service_fingerprint() {
    let seq = run_with(3, ParallelismMode::Sequential);
    let par = run_with(3, ParallelismMode::Parallel);
    assert_eq!(seq.fingerprint(), par.fingerprint());
}

#[test]
fn different_seeds_actually_change_outputs() {
    // Guards against a degenerate fingerprint: perturbing one job's
    // seed must move the batch fingerprint.
    let base = run_with(2, ParallelismMode::default());
    let mut specs = mixed_batch();
    specs[0].seed = Seed(999);
    let svc = JobService::new(ServiceConfig {
        workers: 2,
        shed_fraction: 0.6,
        capacity_words: 1 << 22,
        mode: ParallelismMode::default(),
    });
    let perturbed = svc.run_batch(specs);
    assert_ne!(perturbed.fingerprint(), base.fingerprint());
}
