//! Crash-chaos sweep: a journaled service killed at seeded crash points
//! must recover to a report bit-identical to an uninterrupted run.
//!
//! The batch mixes every lifecycle the journal records: healthy jobs,
//! a poison job that quarantines through the retry ladder, a faulted
//! job that fails early attempts, a low-priority job on the shedding
//! rung, and an over-budget job that admission rejects. Crash plans
//! sweep the kill point across submission, dispatch, retry, and
//! completion records, plus the torn-final-write and duplicated-record
//! variants.

use csmpc_graph::rng::Seed;
use csmpc_service::{
    Counters, CrashPlan, FaultSpec, GraphSpec, JobService, JobSpec, Journal, JournalError,
    Priority, RecoveryError, ServiceConfig, ServiceReport, Workload,
};
use std::path::{Path, PathBuf};

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("csmpc_chaos_{}_{name}.bin", std::process::id()))
}

fn config() -> ServiceConfig {
    ServiceConfig {
        workers: 3,
        shed_fraction: 0.0, // every low-priority job rides the shedding rung
        ..ServiceConfig::default()
    }
}

/// A batch exercising completion, degradation, retry→quarantine, the
/// shedding rung, and admission rejection.
fn mixed_batch() -> Vec<JobSpec> {
    let mut specs = Vec::new();
    for (i, tenant) in ["acme", "umbrella", "acme"].iter().enumerate() {
        specs.push(JobSpec::basic(
            tenant,
            Workload::CcLabels,
            GraphSpec::TwoCycles { n: 8 },
            Seed(10 + i as u64),
        ));
    }
    // Poison: a 1-round deadline trips on every attempt → quarantine.
    let mut poison = JobSpec::basic(
        "umbrella",
        Workload::LubyMis,
        GraphSpec::Cycle { n: 8 },
        Seed(40),
    );
    poison.deadline_rounds = Some(1);
    poison.max_attempts = 3;
    specs.push(poison);
    // Faulted: crash recovery inside the run, plus the job retry ladder.
    let mut faulted = JobSpec::basic(
        "initech",
        Workload::CcLabels,
        GraphSpec::TwoCycles { n: 8 },
        Seed(50),
    );
    faulted.faults = Some(FaultSpec {
        crashes: 1,
        stragglers: 1,
        horizon: 6,
        corrupt_per_mille: 0,
        seed: 0xFA11,
    });
    faulted.recovery_retries = 0;
    specs.push(faulted);
    // Shed: low priority under a zero watermark.
    let mut low = JobSpec::basic(
        "acme",
        Workload::BallColoring { radius: 2 },
        GraphSpec::RandomTree { n: 12, seed: 3 },
        Seed(60),
    );
    low.priority = Priority::Low;
    specs.push(low);
    // Rejected: a footprint beyond the whole aggregate budget.
    let mut huge = JobSpec::basic(
        "umbrella",
        Workload::CcLabels,
        GraphSpec::Cycle { n: 8 },
        Seed(70),
    );
    huge.min_space = 1 << 23; // footprint ≥ 2× the default capacity
    specs.push(huge);
    specs
}

fn reference_report(cfg: &ServiceConfig, specs: &[JobSpec]) -> ServiceReport {
    JobService::new(cfg.clone()).run_batch(specs.to_vec())
}

/// Runs the batch under `plan`, recovering (and resubmitting anything
/// the dead process never journaled) until the batch completes. Returns
/// the final report and how many recoveries it took.
fn run_with_crash(
    cfg: &ServiceConfig,
    specs: &[JobSpec],
    plan: CrashPlan,
    path: &Path,
) -> (ServiceReport, u32) {
    let svc = JobService::with_journal(cfg.clone(), Journal::create(path).unwrap());
    svc.arm_crash(plan);
    for s in specs {
        let _ = svc.submit(s.clone());
    }
    if let Some(report) = svc.run_recoverable() {
        return (report, 0);
    }
    drop(svc);
    let mut recoveries = 1u32;
    loop {
        let (svc, _info) = JobService::recover(cfg.clone(), path).unwrap();
        // Submissions past the journaled prefix died with the process;
        // the client resubmits them and gets the same dense ids.
        let persisted = svc.submitted_jobs();
        for s in &specs[persisted..] {
            let _ = svc.submit(s.clone());
        }
        match svc.run_recoverable() {
            Some(report) => return (report, recoveries),
            None => recoveries += 1,
        }
    }
}

fn assert_reports_match(reference: &ServiceReport, recovered: &ServiceReport, ctx: &str) {
    assert_eq!(
        reference.fingerprint(),
        recovered.fingerprint(),
        "{ctx}: fingerprint diverged"
    );
    assert_eq!(
        reference.counters, recovered.counters,
        "{ctx}: counters diverged"
    );
    assert_eq!(reference.outcomes.len(), recovered.outcomes.len(), "{ctx}");
    for (a, b) in reference.outcomes.iter().zip(&recovered.outcomes) {
        assert_eq!(a.id, b.id, "{ctx}");
        assert_eq!(a.state, b.state, "{ctx}: job {:?}", a.id);
        assert_eq!(a.shed, b.shed, "{ctx}: job {:?}", a.id);
        assert_eq!(a.attempts, b.attempts, "{ctx}: job {:?}", a.id);
        assert_eq!(a.digest, b.digest, "{ctx}: job {:?}", a.id);
        assert_eq!(a.stats, b.stats, "{ctx}: job {:?}", a.id);
        assert_eq!(a.errors, b.errors, "{ctx}: job {:?}", a.id);
        assert_eq!(a.reject_reason, b.reject_reason, "{ctx}: job {:?}", a.id);
    }
}

#[test]
fn kill_points_across_the_whole_log_recover_bit_identical() {
    let cfg = config();
    let specs = mixed_batch();
    let reference = reference_report(&cfg, &specs);
    for k in 1..=20 {
        let path = tmp(&format!("kill_{k}"));
        let (report, recoveries) = run_with_crash(&cfg, &specs, CrashPlan::kill_after(k), &path);
        assert!(recoveries >= 1, "kill point {k} fired before the log ended");
        assert_reports_match(&reference, &report, &format!("kill after {k}"));
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn seeded_crash_variants_recover_bit_identical() {
    let cfg = config();
    let specs = mixed_batch();
    let reference = reference_report(&cfg, &specs);
    for s in 0..12u64 {
        let plan = CrashPlan::random(Seed(s), 40);
        let path = tmp(&format!("seeded_{s}"));
        let (report, _) = run_with_crash(&cfg, &specs, plan, &path);
        assert_reports_match(&reference, &report, &format!("seeded plan {plan:?}"));
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn torn_final_write_truncates_and_recovers() {
    let cfg = config();
    let specs = mixed_batch();
    let reference = reference_report(&cfg, &specs);
    let path = tmp("torn");
    let plan = CrashPlan::kill_after(9).with_torn_tail(5);
    let svc = JobService::with_journal(cfg.clone(), Journal::create(&path).unwrap());
    svc.arm_crash(plan);
    for s in &specs {
        let _ = svc.submit(s.clone());
    }
    assert!(svc.run_recoverable().is_none(), "the plan must fire");
    drop(svc);
    let (svc, info) = JobService::recover(cfg.clone(), &path).unwrap();
    assert_eq!(info.torn_bytes_truncated, 5, "the torn prefix is dropped");
    assert_eq!(info.records_replayed, 9);
    let persisted = svc.submitted_jobs();
    for s in &specs[persisted..] {
        let _ = svc.submit(s.clone());
    }
    let report = svc.run_recoverable().expect("no second crash armed");
    assert_reports_match(&reference, &report, "torn final write");
    std::fs::remove_file(&path).ok();
}

#[test]
fn duplicated_record_is_idempotent_on_replay() {
    let cfg = config();
    let specs = mixed_batch();
    let reference = reference_report(&cfg, &specs);
    let path = tmp("dup");
    let plan = CrashPlan::kill_after(12).with_duplicate(3);
    let svc = JobService::with_journal(cfg.clone(), Journal::create(&path).unwrap());
    svc.arm_crash(plan);
    for s in &specs {
        let _ = svc.submit(s.clone());
    }
    assert!(svc.run_recoverable().is_none());
    drop(svc);
    let (svc, info) = JobService::recover(cfg.clone(), &path).unwrap();
    assert_eq!(info.duplicates_ignored, 1, "the retried write replays once");
    let persisted = svc.submitted_jobs();
    for s in &specs[persisted..] {
        let _ = svc.submit(s.clone());
    }
    let report = svc.run_recoverable().expect("no second crash armed");
    assert_reports_match(&reference, &report, "duplicated record");
    std::fs::remove_file(&path).ok();
}

#[test]
fn double_recover_is_idempotent() {
    let cfg = config();
    let specs = mixed_batch();
    let reference = reference_report(&cfg, &specs);
    let path = tmp("double");
    let svc = JobService::with_journal(cfg.clone(), Journal::create(&path).unwrap());
    svc.arm_crash(CrashPlan::kill_after(7).with_torn_tail(3));
    for s in &specs {
        let _ = svc.submit(s.clone());
    }
    assert!(svc.run_recoverable().is_none());
    drop(svc);
    // First recovery truncates the tail and re-journals any lost
    // admission decision; abandoning it and recovering again must land
    // in the same state — recovery mutates the log only idempotently.
    let (first, info1) = JobService::recover(cfg.clone(), &path).unwrap();
    assert_eq!(info1.torn_bytes_truncated, 3);
    drop(first);
    let (svc, info2) = JobService::recover(cfg.clone(), &path).unwrap();
    assert_eq!(info2.torn_bytes_truncated, 0, "truncation already applied");
    assert_eq!(info2.rederived_admissions, 0, "re-derivations are durable");
    let persisted = svc.submitted_jobs();
    for s in &specs[persisted..] {
        let _ = svc.submit(s.clone());
    }
    let report = svc.run_recoverable().expect("no second crash armed");
    assert_reports_match(&reference, &report, "double recover");
    std::fs::remove_file(&path).ok();
}

#[test]
fn crash_between_submission_and_decision_rederives_the_verdict() {
    let cfg = config();
    let specs = mixed_batch();
    let reference = reference_report(&cfg, &specs);
    // Record 1 is job 0's Submitted; its admission decision is the
    // fatal write, so replay must re-derive (and re-journal) it.
    let path = tmp("undecided");
    let svc = JobService::with_journal(cfg.clone(), Journal::create(&path).unwrap());
    svc.arm_crash(CrashPlan::kill_after(1));
    for s in &specs {
        let _ = svc.submit(s.clone());
    }
    assert!(svc.run_recoverable().is_none());
    drop(svc);
    let (svc, info) = JobService::recover(cfg.clone(), &path).unwrap();
    assert_eq!(info.records_replayed, 1);
    assert_eq!(info.rederived_admissions, 1);
    assert_eq!(svc.submitted_jobs(), 1, "only job 0 persisted");
    for s in &specs[1..] {
        let _ = svc.submit(s.clone());
    }
    let report = svc.run_recoverable().expect("no second crash armed");
    assert_reports_match(&reference, &report, "undecided submission");
    std::fs::remove_file(&path).ok();
}

#[test]
fn recovery_charges_replay_work_into_a_standalone_ledger() {
    let cfg = config();
    let specs = mixed_batch();
    let path = tmp("charged");
    let svc = JobService::with_journal(cfg.clone(), Journal::create(&path).unwrap());
    svc.arm_crash(CrashPlan::kill_after(10));
    for s in &specs {
        let _ = svc.submit(s.clone());
    }
    assert!(svc.run_recoverable().is_none());
    drop(svc);
    let (svc, info) = JobService::recover(cfg.clone(), &path).unwrap();
    // One replay round per record, words mirrored into the recovery
    // columns — the paper's discipline: recovery is never free.
    assert_eq!(info.replay_stats.rounds as u64, info.records_replayed);
    assert_eq!(info.replay_stats.recovery_rounds, info.replay_stats.rounds);
    assert!(info.replay_stats.total_words > 0);
    assert_eq!(
        info.replay_stats.recovery_words,
        info.replay_stats.total_words
    );
    // …and the ledger stays out of the fingerprint-covered report.
    let persisted = svc.submitted_jobs();
    for s in &specs[persisted..] {
        let _ = svc.submit(s.clone());
    }
    let report = svc.run_recoverable().expect("no second crash armed");
    assert_eq!(
        report.counters,
        reference_report(&cfg, &specs).counters,
        "replay charges must not leak into service counters"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn interior_corruption_refuses_recovery_loudly() {
    let cfg = config();
    let specs = mixed_batch();
    let path = tmp("corrupt");
    let svc = JobService::with_journal(cfg.clone(), Journal::create(&path).unwrap());
    svc.arm_crash(CrashPlan::kill_after(12));
    for s in &specs {
        let _ = svc.submit(s.clone());
    }
    assert!(svc.run_recoverable().is_none());
    drop(svc);
    // Flip one payload bit in the very first record.
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[12 + 3] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();
    match JobService::recover(cfg, &path) {
        Err(RecoveryError::Journal(JournalError::Corrupt { offset, .. })) => {
            assert_eq!(offset, 0);
        }
        Err(other) => panic!("expected interior corruption error, got {other:?}"),
        Ok(_) => panic!("corrupt interior must refuse recovery"),
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn uninterrupted_journaled_run_needs_no_recovery_and_matches() {
    let cfg = config();
    let specs = mixed_batch();
    let reference = reference_report(&cfg, &specs);
    let path = tmp("quiet");
    let svc = JobService::with_journal(cfg.clone(), Journal::create(&path).unwrap());
    for s in &specs {
        let _ = svc.submit(s.clone());
    }
    let report = svc.run_recoverable().expect("nothing armed");
    assert_reports_match(&reference, &report, "journaled, uncrashed");
    assert!(!svc.crashed());
    drop(svc);
    // The complete log replays to a fully-terminal state.
    let (recovered, info) = JobService::recover(cfg, &path).unwrap();
    assert_eq!(info.resumed_jobs, 0);
    assert_eq!(info.restored_terminal as usize, specs.len());
    assert_eq!(recovered.submitted_jobs(), specs.len());
    let replayed = recovered.run_recoverable().expect("nothing armed");
    assert_reports_match(&reference, &replayed, "pure replay of a full log");
    std::fs::remove_file(&path).ok();
}

#[test]
fn counters_counted_exactly_once_across_the_crash_boundary() {
    let cfg = config();
    let specs = mixed_batch();
    let reference = reference_report(&cfg, &specs);
    // Sanity on the reference itself: the batch really exercises every
    // counter the journal must reconstruct.
    let c: Counters = reference.counters;
    assert!(c.retries > 0 && c.quarantined > 0 && c.shed > 0 && c.rejected > 0);
    assert!(c.deadline_failures > 0 && c.backoff_ticks > 0);
    for k in [5u64, 15, 25] {
        let path = tmp(&format!("counters_{k}"));
        let (report, _) = run_with_crash(&cfg, &specs, CrashPlan::kill_after(k), &path);
        assert_eq!(report.counters, reference.counters, "kill after {k}");
        std::fs::remove_file(&path).ok();
    }
}
