//! The README "Job service quick-start" snippet, kept compiling.

use csmpc_graph::rng::Seed;
use csmpc_service::{GraphSpec, JobService, JobSpec, Priority, ServiceConfig, Workload};

fn main() {
    let service = JobService::new(ServiceConfig::default()); // 4 workers
    let specs = (0..32u64)
        .map(|i| {
            let mut s = JobSpec::basic(
                if i % 2 == 0 { "acme" } else { "beta" },
                Workload::CcLabels,
                GraphSpec::Cycle { n: 24 },
                Seed(0x50AB + i),
            );
            s.priority = if i % 8 == 0 {
                Priority::High
            } else {
                Priority::Normal
            };
            s.deadline_rounds = Some(200);
            s
        })
        .collect();
    let report = service.run_batch(specs);
    println!("{:?}", report.counters); // completed/degraded/quarantined/shed/…
}
