//! # csmpc-core
//!
//! The primary contribution of *"Component Stability in Low-Space Massively
//! Parallel Computation"* (Czumaj, Davies, Parter; PODC 2021) as a library:
//!
//! * [`stability`] — the revised component-stability notion
//!   (Definition 13) with an **empirical verifier**: sibling-swap and
//!   renaming probes that produce constructive instability witnesses;
//! * [`sensitivity`] — `(D, ε, n, Δ)`-sensitivity (Definition 24), the
//!   quantity Lemma 25 extracts from LOCAL hardness, measured over seeds;
//! * [`lifting`] — the Lemma 27 / Theorem 14 reduction `B_st-conn`:
//!   simulation graphs `G_H`, `G'_H` built from BFS layers of a
//!   `D`-radius-identical pair, with the YES/NO dichotomy verified
//!   structurally and end-to-end;
//! * [`classes`] — the Section 2.5 landscape (`S-DetMPC ⊆ DetMPC`,
//!   `S-RandMPC ⊆ RandMPC`) as a runnable classifier;
//! * [`conformance`] — the runtime half of the model-conformance analyzer:
//!   converts provenance flows recorded by the simulator plus round-stamped
//!   resource errors into [`conformance::RuntimeViolation`] reports.
//!
//! Together with `csmpc-problems::replicability` (Definition 9, `Γ_G`)
//! this covers every construction in the paper's framework sections.
//!
//! ```
//! use csmpc_core::stability::verify_component_stability;
//! use csmpc_algorithms::amplify::StableOneShotIs;
//! use csmpc_graph::{generators, rng::Seed};
//!
//! let comp = generators::cycle(8);
//! let report = verify_component_stability(&StableOneShotIs, &comp, 3, Seed(0))?;
//! assert!(report.looks_stable());
//! # Ok::<(), csmpc_mpc::MpcError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod classes;
pub mod conformance;
pub mod lifting;
pub mod lower_bounds;
pub mod runner;
pub mod sensitivity;
pub mod stability;

pub use classes::{classify, MpcClass, Placement};
pub use conformance::{run_with_conformance, ConformanceRun, RuntimeViolation};
pub use lifting::{b_st_conn, BStConnRun, LiftingPair, StVerdict};
pub use runner::{
    evaluate_edge, evaluate_vertex, evaluate_vertex_with_faults, success_probability, Evaluation,
    FaultEvaluation,
};
pub use sensitivity::{estimate_sensitivity, CenteredPair};
pub use stability::{
    verify_component_stability, verify_crash_immunity, CrashImmunityReport, CrashWitness,
    StabilityReport,
};
