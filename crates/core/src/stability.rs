//! Component stability (Definition 13) as a *testable* property.
//!
//! Definition 13 says: a randomized MPC algorithm is component-stable when
//! its output at `v` is a deterministic function of
//! `(CC(v), v, n, Δ, S)` — the topology and **IDs** (not names) of `v`'s
//! component, the exact `n` and `Δ` of the whole input, and the shared
//! seed. Two falsifiable consequences drive the verifier:
//!
//! 1. **Sibling swap** — replacing a *different* component with any other
//!    graph of the same size and maximum degree must not change the output
//!    on `CC(v)`;
//! 2. **Renaming** — changing node *names* (keeping IDs) must not change
//!    any output.
//!
//! A violation of either is a constructive witness of component
//! *instability*; surviving many trials is (only) evidence of stability,
//! which is the right epistemic status for an empirical check.

use csmpc_algorithms::api::MpcVertexAlgorithm;
use csmpc_graph::rng::{Seed, SplitMix64};
use csmpc_graph::{generators, ops, Graph};
use csmpc_mpc::{
    run_supervised, Cluster, ComponentId, ComponentVerdict, FaultPlan, MpcConfig, MpcError,
    RecoveryPolicy, SupervisedOutcome, SupervisorConfig,
};
use csmpc_parallel::{par_map_range, ParallelismMode};
use std::collections::BTreeSet;

/// A concrete witness that an algorithm is component-unstable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstabilityWitness {
    /// Which probe produced the witness.
    pub probe: ProbeKind,
    /// Trial index (for reproduction).
    pub trial: usize,
    /// Index (within the observed component) of the first differing node.
    pub node_in_component: usize,
}

/// The kind of stability probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeKind {
    /// Swapped an unrelated sibling component (same `n`, same `Δ`).
    SiblingSwap,
    /// Renamed all nodes (names only; IDs untouched).
    Renaming,
}

/// Result of a stability verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StabilityReport {
    /// Algorithm name.
    pub algorithm: String,
    /// Trials executed per probe kind.
    pub trials: usize,
    /// Witnesses found (empty = consistent with stability).
    pub witnesses: Vec<InstabilityWitness>,
}

impl StabilityReport {
    /// No witness was found.
    #[must_use]
    pub fn looks_stable(&self) -> bool {
        self.witnesses.is_empty()
    }
}

/// Builds a cluster for stability probes (generous space so that the probes
/// measure stability, not space limits).
fn probe_cluster(g: &Graph, seed: Seed) -> Cluster {
    let cfg = MpcConfig {
        min_space: 1 << 14,
        ..Default::default()
    };
    Cluster::new(cfg, g.n(), csmpc_mpc::graph_words(g), seed)
}

/// Generates a sibling component with `n` nodes and maximum degree ≤
/// `delta_cap`, with IDs in `0..n` and names drawn from `name_base..`.
fn sibling(n: usize, delta_cap: usize, name_base: u64, seed: Seed) -> Graph {
    let base = if n < 3 || delta_cap < 2 {
        csmpc_graph::GraphBuilder::with_sequential_nodes(n)
            .build()
            .expect("isolated nodes are valid")
    } else {
        let mut rng = SplitMix64::new(seed);
        match rng.index(3) {
            0 => generators::cycle(n),
            1 => generators::path(n),
            _ => {
                if n >= 6 && n.is_multiple_of(2) {
                    generators::two_cycles(n)
                } else {
                    generators::random_tree(n, seed.derive(1))
                }
            }
        }
    };
    let shuffled = generators::shuffle_identity(&base, 0, 0, seed.derive(2));
    ops::with_fresh_names(&shuffled, name_base)
}

/// Runs the Definition 13 verifier on `alg`, observing the component
/// `component` embedded next to varying siblings.
///
/// Trials derive their seeds from the trial index and share no state, so
/// they run as a parallel sweep ([`ParallelismMode::default`]); witnesses
/// are collected in trial order, and the report is identical in both modes.
///
/// # Errors
///
/// Propagates algorithm errors (e.g. space violations).
pub fn verify_component_stability<A: MpcVertexAlgorithm + Sync>(
    alg: &A,
    component: &Graph,
    trials: usize,
    master_seed: Seed,
) -> Result<StabilityReport, MpcError> {
    let nc = component.n();
    let delta = component.max_degree();

    // Reference embedding: component ⊎ reference sibling.
    let per_trial: Vec<Result<Vec<InstabilityWitness>, MpcError>> =
        par_map_range(ParallelismMode::default(), trials, |trial| {
            let mut found = Vec::new();
            let trial_seed = master_seed.derive(trial as u64);
            let sib_a = sibling(nc.max(3), delta.max(2), 10_000, trial_seed.derive(10));
            let sib_b = sibling(nc.max(3), delta.max(2), 10_000, trial_seed.derive(11));
            // Ensure identical (n, Δ): regenerate b until Δ matches a.
            let sib_b = if sib_b.max_degree() == sib_a.max_degree() {
                sib_b
            } else {
                ops::with_fresh_names(
                    &generators::shuffle_identity(&sib_a, 0, 0, trial_seed.derive(12)),
                    10_000,
                )
            };
            let ga = ops::disjoint_union(&[component, &sib_a]);
            let gb = ops::disjoint_union(&[component, &sib_b]);
            debug_assert_eq!(ga.n(), gb.n());
            debug_assert_eq!(ga.max_degree(), gb.max_degree());
            let shared = trial_seed.derive(99);
            let la = alg.run(&ga, &mut probe_cluster(&ga, shared))?;
            let lb = alg.run(&gb, &mut probe_cluster(&gb, shared))?;
            if let Some(idx) = (0..nc).find(|&v| la[v] != lb[v]) {
                found.push(InstabilityWitness {
                    probe: ProbeKind::SiblingSwap,
                    trial,
                    node_in_component: idx,
                });
            }

            // Renaming probe: same graph, fresh names everywhere.
            let renamed = ops::with_fresh_names(&ga, 700_000 + trial as u64 * 1_000);
            let lr = alg.run(&renamed, &mut probe_cluster(&renamed, shared))?;
            if let Some(idx) = (0..nc).find(|&v| la[v] != lr[v]) {
                found.push(InstabilityWitness {
                    probe: ProbeKind::Renaming,
                    trial,
                    node_in_component: idx,
                });
            }
            Ok(found)
        });
    let mut witnesses = Vec::new();
    for trial_witnesses in per_trial {
        witnesses.extend(trial_witnesses?);
    }
    Ok(StabilityReport {
        algorithm: alg.name().to_string(),
        trials,
        witnesses,
    })
}

/// Builds a cluster for crash-immunity probes. Deliberately *tighter*
/// than [`probe_cluster`]: a small space floor spreads the records over
/// enough machines that some machine's provenance tags are disjoint from
/// the observed component — otherwise there is nothing foreign to crash.
fn immunity_cluster(g: &Graph, seed: Seed) -> Cluster {
    let cfg = MpcConfig {
        min_space: 64,
        ..Default::default()
    };
    Cluster::new(cfg, g.n(), csmpc_mpc::graph_words(g), seed)
}

/// A concrete witness that crashing a *foreign* machine (one whose
/// provenance tags are disjoint from the observed component) changed the
/// output on that component — a fault-tolerance breach of Definition 13.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashWitness {
    /// Trial index (for reproduction).
    pub trial: usize,
    /// The crashed machine.
    pub machine: usize,
    /// Index (within the observed component) of the first differing node.
    pub node_in_component: usize,
}

/// Result of a crash-immunity verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashImmunityReport {
    /// Algorithm name.
    pub algorithm: String,
    /// Trials attempted.
    pub trials: usize,
    /// Crashes actually injected and recovered (trials without a foreign
    /// machine, or whose crash never fired, inject nothing).
    pub crashes_recovered: usize,
    /// Witnesses found (empty = crash-immune as far as observed).
    pub witnesses: Vec<CrashWitness>,
}

impl CrashImmunityReport {
    /// No witness was found.
    #[must_use]
    pub fn immune(&self) -> bool {
        self.witnesses.is_empty()
    }
}

/// Verifies that a component-stable algorithm's output on a component
/// survives crashes of machines *outside* that component.
///
/// Definition 13 promises the output at `v` is a function of
/// `(CC(v), v, n, Δ, S)` alone; with checkpointed recovery, a crash of a
/// machine holding no `CC(v)` state should therefore be invisible to
/// `CC(v)` (beyond the ledger charge). Each trial embeds `component` next
/// to a varying sibling, runs a fault-free baseline to learn the machine
/// component tags, then deterministically re-runs with a crash of one
/// foreign-tagged machine under [`RecoveryPolicy::RestartFromCheckpoint`]
/// and compares the outputs on the component.
///
/// # Errors
///
/// Propagates algorithm errors (e.g. space violations or exhausted retry
/// budgets).
pub fn verify_crash_immunity<A: MpcVertexAlgorithm + Sync>(
    alg: &A,
    component: &Graph,
    trials: usize,
    master_seed: Seed,
) -> Result<CrashImmunityReport, MpcError> {
    /// One trial's outcome: `None` when the probe was inapplicable (no
    /// foreign machine, or the run beat the crash round), otherwise the
    /// recovery flag and an optional divergence witness.
    type CrashProbe = Result<Option<(bool, Option<CrashWitness>)>, MpcError>;
    let nc = component.n();
    let delta = component.max_degree();
    // Per-trial probes are seed-independent; run them as a parallel sweep
    // and fold the outcomes in trial order.
    let per_trial: Vec<CrashProbe> = par_map_range(ParallelismMode::default(), trials, |trial| {
        let trial_seed = master_seed.derive(0xc7a5).derive(trial as u64);
        let sib = sibling(nc.max(3), delta.max(2), 10_000, trial_seed.derive(10));
        let g = ops::disjoint_union(&[component, &sib]);
        let shared = trial_seed.derive(99);

        // Fault-free baseline: learn the output and the machine tags.
        let mut baseline = immunity_cluster(&g, shared);
        let la = alg.run(&g, &mut baseline)?;
        let target: BTreeSet<ComponentId> = g.component_labels()[..nc]
            .iter()
            .map(|&c| c as ComponentId)
            .collect();
        let foreign: Vec<usize> = (0..baseline.num_machines())
            .filter(|&m| {
                let tags = baseline.machine_components(m);
                !tags.is_empty() && !tags.iter().any(|c| target.contains(c))
            })
            .collect();
        let Some(&victim) = foreign.first() else {
            return Ok(None); // every machine touches the component
        };

        // Same seed, same distribution — crash the foreign machine early
        // enough to strike mid-run, and recover from checkpoints.
        let mut rng = SplitMix64::new(trial_seed.derive(7));
        let crash_round = 1 + rng.index(3);
        let plan = FaultPlan::quiet(shared).crash(victim, crash_round);
        let mut faulted = immunity_cluster(&g, shared);
        faulted.arm_faults(plan, RecoveryPolicy::restart(4));
        let lb = alg.run(&g, &mut faulted)?;
        if faulted.recovery_log().is_empty() {
            return Ok(None); // the run finished before the crash round
        }
        let witness = (0..nc).find(|&v| la[v] != lb[v]).map(|idx| CrashWitness {
            trial,
            machine: victim,
            node_in_component: idx,
        });
        Ok(Some((true, witness)))
    });
    let mut witnesses = Vec::new();
    let mut crashes_recovered = 0usize;
    for outcome in per_trial {
        if let Some((recovered, witness)) = outcome? {
            crashes_recovered += usize::from(recovered);
            witnesses.extend(witness);
        }
    }
    Ok(CrashImmunityReport {
        algorithm: alg.name().to_string(),
        trials,
        crashes_recovered,
        witnesses,
    })
}

/// Result of a degraded-run immunity verification: the crash-immunity
/// contract extended past the recovery budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradedImmunityReport {
    /// Algorithm name.
    pub algorithm: String,
    /// Trials attempted.
    pub trials: usize,
    /// Trials whose recovery budget was actually exhausted and that came
    /// back as a degraded partial output (trials without a foreign
    /// machine, or whose crash never fired, degrade nothing).
    pub degraded_runs: usize,
    /// Witnesses found: a healthy component's salvaged label differed
    /// from the fault-free run (empty = the degraded-output contract
    /// held as far as observed).
    pub witnesses: Vec<CrashWitness>,
}

impl DegradedImmunityReport {
    /// No witness was found.
    #[must_use]
    pub fn immune(&self) -> bool {
        self.witnesses.is_empty()
    }
}

/// Verifies the *degraded-output* contract: when the recovery budget is
/// exhausted by faults confined to machines *outside* the observed
/// component, [`run_supervised`] must return a
/// [`csmpc_mpc::PartialOutput`] whose verdict for the observed component
/// is `Healthy` and whose labels on it are **bit-identical** to the
/// fault-free run.
///
/// This is [`verify_crash_immunity`] pushed past the point of recovery:
/// each trial learns the machine tags from a fault-free baseline, then
/// crashes one foreign-tagged machine under a zero-retry budget — so the
/// run *cannot* recover — and compares the salvaged labels on the
/// component against the baseline. For a component-stable algorithm
/// (Definition 13) the salvage re-run cannot observe the tainted
/// components' stand-ins, so the labels must agree exactly.
///
/// # Errors
///
/// Propagates algorithm errors other than the deliberately induced
/// machine failure (which degrades instead of erroring).
pub fn verify_degraded_immunity<A: MpcVertexAlgorithm + Sync>(
    alg: &A,
    component: &Graph,
    trials: usize,
    master_seed: Seed,
) -> Result<DegradedImmunityReport, MpcError>
where
    A::Label: Send + Sync,
{
    /// One trial: `None` when inapplicable (no foreign machine, or the
    /// run beat the crash round), otherwise an optional witness.
    type DegradedProbe = Result<Option<Option<CrashWitness>>, MpcError>;
    let nc = component.n();
    let delta = component.max_degree();
    let per_trial: Vec<DegradedProbe> =
        par_map_range(ParallelismMode::default(), trials, |trial| {
            let trial_seed = master_seed.derive(0xdeca).derive(trial as u64);
            let sib = sibling(nc.max(3), delta.max(2), 10_000, trial_seed.derive(10));
            let g = ops::disjoint_union(&[component, &sib]);
            let shared = trial_seed.derive(99);

            // Fault-free baseline: learn the output and the machine tags.
            let mut baseline = immunity_cluster(&g, shared);
            let la = alg.run(&g, &mut baseline)?;
            let target: BTreeSet<ComponentId> = g.component_labels()[..nc]
                .iter()
                .map(|&c| c as ComponentId)
                .collect();
            let foreign: Vec<usize> = (0..baseline.num_machines())
                .filter(|&m| {
                    let tags = baseline.machine_components(m);
                    !tags.is_empty() && !tags.iter().any(|c| target.contains(c))
                })
                .collect();
            let Some(&victim) = foreign.first() else {
                return Ok(None); // every machine touches the component
            };

            // Zero retries: the first crash exhausts the budget, forcing the
            // degraded path instead of a checkpoint recovery.
            let mut rng = SplitMix64::new(trial_seed.derive(7));
            let crash_round = 1 + rng.index(3);
            let plan = FaultPlan::quiet(shared).crash(victim, crash_round);
            let template = immunity_cluster(&g, shared);
            let run = run_supervised(
                &g,
                &template,
                &plan,
                RecoveryPolicy::restart(0),
                SupervisorConfig::default(),
                |g, cluster| alg.run(g, cluster),
            )?;
            let SupervisedOutcome::Degraded(partial) = &run.outcome else {
                return Ok(None); // the run finished before the crash round
            };
            // The observed component was never touched: its verdict must be
            // Healthy and its salvaged labels bit-identical to the baseline.
            let witness = (0..nc)
                .find(|&v| {
                    let c =
                        ComponentId::try_from(g.component_labels()[v]).unwrap_or(ComponentId::MAX);
                    partial.verdicts.get(&c) != Some(&ComponentVerdict::Healthy)
                        || partial.labels[v].as_ref() != Some(&la[v])
                })
                .map(|idx| CrashWitness {
                    trial,
                    machine: victim,
                    node_in_component: idx,
                });
            Ok(Some(witness))
        });
    let mut witnesses = Vec::new();
    let mut degraded_runs = 0usize;
    for outcome in per_trial {
        if let Some(witness) = outcome? {
            degraded_runs += 1;
            witnesses.extend(witness);
        }
    }
    Ok(DegradedImmunityReport {
        algorithm: alg.name().to_string(),
        trials,
        degraded_runs,
        witnesses,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use csmpc_algorithms::amplify::{AmplifiedLargeIs, StableOneShotIs};
    use csmpc_algorithms::det_is::DerandomizedLargeIs;

    #[test]
    fn stable_algorithm_passes() {
        let comp = generators::cycle(10);
        let report = verify_component_stability(&StableOneShotIs, &comp, 6, Seed(1)).unwrap();
        assert!(report.looks_stable(), "witnesses: {:?}", report.witnesses);
    }

    #[test]
    fn amplified_algorithm_fails() {
        let comp = generators::cycle(10);
        let alg = AmplifiedLargeIs { repetitions: 8 };
        let report = verify_component_stability(&alg, &comp, 12, Seed(2)).unwrap();
        assert!(
            !report.looks_stable(),
            "amplification should be caught as unstable"
        );
    }

    #[test]
    fn derandomized_is_fails_renaming_or_swap() {
        // The pairwise-MCE algorithm hashes node *ranks* and fixes the seed
        // by global agreement — unstable under sibling swaps.
        let comp = generators::cycle(10);
        let report = verify_component_stability(&DerandomizedLargeIs, &comp, 12, Seed(3)).unwrap();
        assert!(!report.looks_stable());
    }

    #[test]
    fn stable_algorithm_is_crash_immune() {
        let comp = generators::cycle(12);
        let report = verify_crash_immunity(&StableOneShotIs, &comp, 8, Seed(11)).unwrap();
        assert!(report.immune(), "witnesses: {:?}", report.witnesses);
        assert!(
            report.crashes_recovered > 0,
            "no crash ever fired; the probe is vacuous"
        );
    }

    #[test]
    fn stable_algorithm_survives_budget_exhaustion_degraded() {
        let comp = generators::cycle(12);
        let report = verify_degraded_immunity(&StableOneShotIs, &comp, 8, Seed(31)).unwrap();
        assert!(report.immune(), "witnesses: {:?}", report.witnesses);
        assert!(
            report.degraded_runs > 0,
            "no trial ever degraded; the probe is vacuous"
        );
    }

    #[test]
    fn report_metadata() {
        let comp = generators::path(5);
        let report = verify_component_stability(&StableOneShotIs, &comp, 3, Seed(4)).unwrap();
        assert_eq!(report.trials, 3);
        assert!(report.algorithm.contains("stable"));
    }
}
