//! Runtime model-conformance checking — the dynamic half of the
//! conformance analyzer (the static half lives in `csmpc-conformance`).
//!
//! Running an algorithm through [`run_with_conformance`] produces, besides
//! its output, a list of [`RuntimeViolation`]s:
//!
//! * **Cross-component flows** — reported only when the algorithm *declares*
//!   itself component-stable ([`MpcVertexAlgorithm::component_stable`]).
//!   Definition 13 allows the output at `v` to depend on
//!   `(CC(v), v, n, Δ, S)` alone, so any data flow between components
//!   observed by the provenance detector ([`csmpc_mpc::ProvenanceLog`])
//!   contradicts the declaration. This is the runtime counterpart of
//!   [`crate::stability::InstabilityWitness`]: the witness is behavioral
//!   (outputs changed under a probe), the flow is mechanistic (here is the
//!   primitive, round, and component pair that leaked).
//! * **Space-budget and round-cap violations** — `S = n^φ` words per
//!   machine, per-round send/receive volume capped at `S` (paper
//!   Section 2.4.2). These are converted from the round-stamped
//!   [`MpcError`] variants and reported for *every* algorithm, stable or
//!   not.

use csmpc_algorithms::api::MpcVertexAlgorithm;
use csmpc_graph::Graph;
use csmpc_mpc::{Cluster, MpcError};

/// One runtime violation of the MPC model or of a stability declaration.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeViolation {
    /// A component-stable-declared algorithm moved data across a component
    /// boundary (violates Definition 13).
    CrossComponentFlow {
        /// The primitive (or engine path) that moved the data.
        primitive: &'static str,
        /// Round counter value when the flow was recorded.
        round: usize,
        /// Component the data originated from.
        from_component: u32,
        /// Component whose machines observed the data.
        to_component: u32,
    },
    /// A machine's storage exceeded the `S = n^φ` space budget.
    SpaceBudget {
        /// Machine index.
        machine: usize,
        /// Round counter value when the violation occurred.
        round: usize,
        /// Words stored.
        words: usize,
        /// The budget `S`.
        limit: usize,
    },
    /// A machine sent or received more than `S` words in one round.
    RoundCap {
        /// Machine index.
        machine: usize,
        /// The violating round.
        round: usize,
        /// Words moved.
        words: usize,
        /// The cap `S`.
        limit: usize,
    },
}

impl core::fmt::Display for RuntimeViolation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RuntimeViolation::CrossComponentFlow {
                primitive,
                round,
                from_component,
                to_component,
            } => write!(
                f,
                "stability violation: {primitive} moved data from component \
                 {from_component} into component {to_component} in round {round}"
            ),
            RuntimeViolation::SpaceBudget {
                machine,
                round,
                words,
                limit,
            } => write!(
                f,
                "space violation: machine {machine} stored {words} words in \
                 round {round} (budget S = {limit})"
            ),
            RuntimeViolation::RoundCap {
                machine,
                round,
                words,
                limit,
            } => write!(
                f,
                "bandwidth violation: machine {machine} moved {words} words in \
                 round {round} (cap S = {limit})"
            ),
        }
    }
}

/// Outcome of a conformance-checked run.
#[derive(Debug, Clone, PartialEq)]
pub struct ConformanceRun<L> {
    /// Algorithm name.
    pub algorithm: String,
    /// Whether the algorithm declared itself component-stable.
    pub declared_stable: bool,
    /// The output labels, when the run completed. `None` when the run was
    /// aborted by a model violation (which then appears in `violations`).
    pub labels: Option<Vec<L>>,
    /// All violations observed, in detection order.
    pub violations: Vec<RuntimeViolation>,
}

impl<L> ConformanceRun<L> {
    /// `true` when the run observed no violation of any kind.
    #[must_use]
    pub fn is_conformant(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Converts a resource-limit [`MpcError`] to its violation report.
/// `UnknownMachine`/`RoundLimitExceeded` are programming errors, not model
/// violations, and map to `None`.
#[must_use]
pub fn violation_from_error(err: &MpcError) -> Option<RuntimeViolation> {
    match *err {
        MpcError::SpaceExceeded {
            machine,
            words,
            limit,
            round,
        } => Some(RuntimeViolation::SpaceBudget {
            machine,
            round,
            words,
            limit,
        }),
        MpcError::BandwidthExceeded {
            machine,
            words,
            limit,
            round,
        } => Some(RuntimeViolation::RoundCap {
            machine,
            round,
            words,
            limit,
        }),
        _ => None,
    }
}

/// Runs `alg` on `g` through `cluster` with the runtime conformance
/// detector armed.
///
/// The cluster's provenance log is cleared first so the report covers this
/// run alone. Resource-limit errors are converted to violations rather than
/// propagated; other errors (`UnknownMachine`, `RoundLimitExceeded`) are
/// returned as errors since they indicate bugs, not model violations.
///
/// # Errors
///
/// Propagates non-resource [`MpcError`]s.
pub fn run_with_conformance<A: MpcVertexAlgorithm>(
    alg: &A,
    g: &Graph,
    cluster: &mut Cluster,
) -> Result<ConformanceRun<A::Label>, MpcError> {
    cluster.provenance_mut().clear();
    let mut violations = Vec::new();
    let labels = match alg.run(g, cluster) {
        Ok(labels) => Some(labels),
        Err(err) => match violation_from_error(&err) {
            Some(v) => {
                violations.push(v);
                None
            }
            None => return Err(err),
        },
    };
    if alg.component_stable() {
        for flow in cluster.provenance().flows() {
            violations.push(RuntimeViolation::CrossComponentFlow {
                primitive: flow.primitive,
                round: flow.round,
                from_component: flow.from_component,
                to_component: flow.to_component,
            });
        }
    }
    Ok(ConformanceRun {
        algorithm: alg.name().to_string(),
        declared_stable: alg.component_stable(),
        labels,
        violations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use csmpc_algorithms::amplify::{AmplifiedLargeIs, StableOneShotIs};
    use csmpc_algorithms::api::cluster_for;
    use csmpc_graph::rng::Seed;
    use csmpc_graph::{generators, ops};

    fn two_component_input() -> Graph {
        let a = generators::cycle(12);
        let b = ops::with_fresh_names(&generators::cycle(12), 500);
        ops::disjoint_union(&[&a, &b])
    }

    #[test]
    fn stable_algorithm_is_conformant_on_multi_component_input() {
        let g = two_component_input();
        let mut cl = cluster_for(&g, Seed(1));
        let run = run_with_conformance(&StableOneShotIs, &g, &mut cl).unwrap();
        assert!(run.declared_stable);
        assert!(run.is_conformant(), "violations: {:?}", run.violations);
        assert!(run.labels.is_some());
    }

    #[test]
    fn amplifier_flows_are_logged_but_not_flagged() {
        // The amplifier is honest about being unstable: its global winner
        // selection shows up in the provenance log but is not a violation.
        let g = two_component_input();
        let mut cl = cluster_for(&g, Seed(2));
        let alg = AmplifiedLargeIs { repetitions: 4 };
        let run = run_with_conformance(&alg, &g, &mut cl).unwrap();
        assert!(!run.declared_stable);
        assert!(run.is_conformant());
        assert!(
            cl.provenance().has_cross_component_flow(),
            "global selection must appear in the provenance log"
        );
    }

    #[test]
    fn lying_stable_declaration_is_caught() {
        // Wrap the amplifier in a facade that *claims* stability; the
        // detector must convert its global-selection flows into violations.
        struct LyingAmplifier(AmplifiedLargeIs);
        impl MpcVertexAlgorithm for LyingAmplifier {
            type Label = bool;
            fn name(&self) -> &str {
                "amplified-large-is (falsely declared stable)"
            }
            fn deterministic(&self) -> bool {
                false
            }
            fn component_stable(&self) -> bool {
                true // the lie
            }
            fn run(&self, g: &Graph, cluster: &mut Cluster) -> Result<Vec<bool>, MpcError> {
                self.0.run(g, cluster)
            }
        }

        let g = two_component_input();
        let mut cl = cluster_for(&g, Seed(3));
        let alg = LyingAmplifier(AmplifiedLargeIs { repetitions: 4 });
        let run = run_with_conformance(&alg, &g, &mut cl).unwrap();
        assert!(!run.is_conformant());
        let flow = run
            .violations
            .iter()
            .find_map(|v| match v {
                RuntimeViolation::CrossComponentFlow {
                    primitive,
                    from_component,
                    to_component,
                    ..
                } => Some((*primitive, *from_component, *to_component)),
                _ => None,
            })
            .expect("expected a cross-component flow violation");
        assert_eq!(flow.0, "select-best-global");
        assert_ne!(flow.1, flow.2);
    }

    #[test]
    fn single_component_input_never_flags_stability() {
        // With one component there is no boundary to cross; even a falsely
        // stable-declared amplifier is conformant.
        let g = generators::cycle(16);
        let mut cl = cluster_for(&g, Seed(4));
        let alg = AmplifiedLargeIs { repetitions: 4 };
        let run = run_with_conformance(&alg, &g, &mut cl).unwrap();
        assert!(run.is_conformant());
        assert!(!cl.provenance().has_cross_component_flow());
    }

    #[test]
    fn space_violation_is_reported_with_machine_and_round() {
        // A tiny space floor forces distribution itself over budget.
        let g = generators::random_gnp(64, 0.5, Seed(7));
        let cfg = csmpc_mpc::MpcConfig {
            min_space: 1, // pathologically small S
            ..Default::default()
        };
        let mut cl = Cluster::new(cfg, g.n(), csmpc_mpc::graph_words(&g), Seed(7));
        let run = run_with_conformance(&StableOneShotIs, &g, &mut cl).unwrap();
        assert!(run.labels.is_none());
        match run.violations.as_slice() {
            [RuntimeViolation::SpaceBudget { words, limit, .. }] => {
                assert!(words > limit);
            }
            other => panic!("expected one space violation, got {other:?}"),
        }
    }

    #[test]
    fn violation_display_names_machine_round_words() {
        let v = RuntimeViolation::RoundCap {
            machine: 3,
            round: 7,
            words: 900,
            limit: 512,
        };
        let s = v.to_string();
        assert!(s.contains("machine 3"), "{s}");
        assert!(s.contains("round 7"), "{s}");
        assert!(s.contains("900"), "{s}");
        assert!(s.contains("512"), "{s}");
    }
}
