//! `(D, ε, n, Δ)`-sensitivity (Definition 24): the probability, over the
//! shared seed, that a component-stable algorithm outputs differently at
//! the centers of two `D`-radius-identical graphs.
//!
//! Lemma 25 shows LOCAL hardness *forces* some pair to be sensitive; here
//! we measure sensitivity empirically for concrete algorithm/pair
//! combinations, which is the quantity the lifting reduction (Lemma 27)
//! consumes.

use csmpc_algorithms::api::MpcVertexAlgorithm;
use csmpc_graph::ball::radius_identical;
use csmpc_graph::rng::Seed;
use csmpc_graph::{ops, Graph, NodeId};
use csmpc_mpc::{Cluster, MpcConfig, MpcError};

/// A pair of centered graphs to test sensitivity against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CenteredPair {
    /// First graph.
    pub g: Graph,
    /// Its center index.
    pub center_g: usize,
    /// Second graph.
    pub gp: Graph,
    /// Its center index.
    pub center_gp: usize,
}

impl CenteredPair {
    /// Checks `D`-radius identicality (Definition 23).
    #[must_use]
    pub fn is_radius_identical(&self, d: usize) -> bool {
        radius_identical(&self.g, self.center_g, &self.gp, self.center_gp, d)
    }
}

/// Embeds `g` as one component of an `n_total`-node input (padding with
/// isolated nodes sharing a fresh ID) and runs `alg`, returning the label
/// at `center` — the empirical realization of `A(G, v, n, Δ, S)`.
///
/// # Errors
///
/// Propagates algorithm errors.
///
/// # Panics
///
/// Panics if `n_total < g.n()`.
pub fn run_as_component<A: MpcVertexAlgorithm>(
    alg: &A,
    g: &Graph,
    center: usize,
    n_total: usize,
    seed: Seed,
) -> Result<A::Label, MpcError> {
    assert!(n_total >= g.n(), "padding cannot shrink the graph");
    let max_id = (0..g.n()).map(|v| g.id(v).0).max().unwrap_or(0);
    let padded = ops::with_isolated_nodes(g, n_total - g.n(), NodeId(max_id + 1), 3_000_000_017);
    let cfg = MpcConfig {
        min_space: 1 << 14,
        ..Default::default()
    };
    let mut cluster = Cluster::new(cfg, padded.n(), csmpc_mpc::graph_words(&padded), seed);
    let labels = alg.run(&padded, &mut cluster)?;
    Ok(labels[center].clone())
}

/// Estimated sensitivity of `alg` with respect to a pair: the fraction of
/// `trials` seeds on which the center outputs differ when each graph is
/// embedded in an `n_total`-node input.
///
/// Trials derive their seeds from the trial index and are independent, so
/// they run as a parallel sweep ([`csmpc_parallel::ParallelismMode`]
/// default); the estimate (and any first error, in trial order) is mode-
/// independent.
///
/// # Errors
///
/// Propagates algorithm errors.
pub fn estimate_sensitivity<A: MpcVertexAlgorithm + Sync>(
    alg: &A,
    pair: &CenteredPair,
    n_total: usize,
    trials: usize,
    master_seed: Seed,
) -> Result<f64, MpcError> {
    let per_trial: Vec<Result<bool, MpcError>> =
        csmpc_parallel::par_map_range(csmpc_parallel::ParallelismMode::default(), trials, |t| {
            let seed = master_seed.derive(t as u64);
            let a = run_as_component(alg, &pair.g, pair.center_g, n_total, seed)?;
            let b = run_as_component(alg, &pair.gp, pair.center_gp, n_total, seed)?;
            Ok(a != b)
        });
    let mut differing = 0usize;
    for verdict in per_trial {
        differing += usize::from(verdict?);
    }
    Ok(differing as f64 / trials.max(1) as f64)
}

/// A deliberately *farsighted* component-stable algorithm used to
/// demonstrate the lifting machinery: each node outputs the maximum ID in
/// its connected component. Stable by construction (a function of `CC(v)`
/// alone) and maximally sensitive to any pair differing in far IDs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ComponentMaxId;

impl MpcVertexAlgorithm for ComponentMaxId {
    type Label = u64;

    fn name(&self) -> &str {
        "component-max-id (stable, deterministic, farsighted)"
    }

    fn deterministic(&self) -> bool {
        true
    }

    fn component_stable(&self) -> bool {
        true
    }

    fn run(&self, g: &Graph, cluster: &mut Cluster) -> Result<Vec<u64>, MpcError> {
        // O(log n) rounds of pointer jumping (the honest cost of gathering
        // component-global information — exactly why Lemma 25 forces
        // sub-logarithmic algorithms to be insensitive).
        let dg = csmpc_mpc::DistributedGraph::distribute(g, cluster)?;
        let (cc, _) = dg.cc_labels(cluster)?;
        let mut max_by_label: std::collections::BTreeMap<u64, u64> = Default::default();
        for (v, &label) in cc.iter().enumerate() {
            let e = max_by_label.entry(label).or_insert(0);
            *e = (*e).max(g.id(v).0);
        }
        Ok((0..g.n()).map(|v| max_by_label[&cc[v]]).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csmpc_graph::ball::identical_ball_path_pair;

    fn pair(d: usize, k: usize) -> CenteredPair {
        let (g, c, gp, cp) = identical_ball_path_pair(d, k);
        CenteredPair {
            g,
            center_g: c,
            gp,
            center_gp: cp,
        }
    }

    #[test]
    fn pair_is_radius_identical() {
        let p = pair(4, 3);
        assert!(p.is_radius_identical(4));
        assert!(!p.is_radius_identical(5));
    }

    #[test]
    fn farsighted_algorithm_is_fully_sensitive() {
        let p = pair(3, 4);
        let s = estimate_sensitivity(&ComponentMaxId, &p, 40, 5, Seed(1)).unwrap();
        assert_eq!(s, 1.0, "max-ID differs on every seed");
    }

    #[test]
    fn local_algorithm_is_insensitive() {
        // A 1-ball algorithm cannot distinguish a D≥1-radius-identical pair.
        #[derive(Debug)]
        struct DegreeOut;
        impl MpcVertexAlgorithm for DegreeOut {
            type Label = usize;
            fn name(&self) -> &str {
                "degree"
            }
            fn deterministic(&self) -> bool {
                true
            }
            fn run(&self, g: &Graph, cluster: &mut Cluster) -> Result<Vec<usize>, MpcError> {
                cluster.charge_rounds(1);
                Ok((0..g.n()).map(|v| g.degree(v)).collect())
            }
        }
        let p = pair(2, 5);
        let s = estimate_sensitivity(&DegreeOut, &p, 40, 5, Seed(2)).unwrap();
        assert_eq!(s, 0.0);
    }

    #[test]
    fn run_as_component_pads_to_n() {
        let p = pair(2, 2);
        // n_total well above the component size: must still run and give
        // the same (stable, deterministic) answer as any other n_total?
        // No — Definition 13 *allows* n-dependency; we only check it runs.
        let out = run_as_component(&ComponentMaxId, &p.g, p.center_g, 60, Seed(3)).unwrap();
        let max_id = (0..p.g.n()).map(|v| p.g.id(v).0).max().unwrap();
        assert_eq!(out, max_id);
    }
}
