//! The conditional-lower-bound registry: Theorem 14's applications
//! (Theorem 28, 38, 40, 42, 48, Lemma 51) as structured, checkable records,
//! together with the *constrained function* notion of Definition 26 that
//! gates which LOCAL bounds `T(N, Δ)` the lifting accepts.

use std::fmt;

/// A round-complexity function `T(N, Δ)`.
pub type RoundFn = fn(f64, f64) -> f64;

/// A named `T(N, Δ)` with the Definition 26 checks:
/// `T(N, Δ) = O(log^γ N)` for some `γ ∈ (0, 1)`, and the smoothness law
/// `T(N^c, Δ) ≤ c · T(N, Δ)` for all `c ≥ 1`.
#[derive(Clone)]
pub struct ConstrainedFn {
    /// Display name, e.g. `"log* N"`.
    pub name: &'static str,
    /// The function itself.
    pub f: RoundFn,
    /// A witness exponent `γ ∈ (0, 1)` for the `O(log^γ N)` bound.
    pub gamma: f64,
}

impl fmt::Debug for ConstrainedFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ConstrainedFn")
            .field("name", &self.name)
            .field("gamma", &self.gamma)
            .finish()
    }
}

impl ConstrainedFn {
    /// Evaluates `T(N, Δ)`.
    #[must_use]
    pub fn eval(&self, n: f64, delta: f64) -> f64 {
        (self.f)(n, delta)
    }

    /// Numerically probes the two Definition 26 conditions over a grid of
    /// `(N, Δ, c)` values; returns the first violation found.
    ///
    /// A probe, not a proof — but it *refutes* non-constrained functions
    /// (e.g. `T = √N`), which is what the framework needs operationally.
    ///
    /// # Errors
    ///
    /// A human-readable description of the violated condition.
    pub fn check_constrained(&self, slack: f64) -> Result<(), String> {
        let ns = [1e2f64, 1e4, 1e8, 1e16, 1e32];
        let deltas = [2.0f64, 8.0, 64.0];
        let cs = [1.0f64, 1.5, 2.0, 4.0];
        for &n in &ns {
            for &delta in &deltas {
                let d = delta.min(n - 1.0);
                let t = self.eval(n, d);
                let cap = slack * n.ln().max(1.0).powf(self.gamma);
                if t > cap {
                    return Err(format!(
                        "{}: T({n:.0e}, {d}) = {t:.2} exceeds {slack}·log^{}(N) = {cap:.2}",
                        self.name, self.gamma
                    ));
                }
                for &c in &cs {
                    let lhs = self.eval(n.powf(c), d);
                    let rhs = c * t;
                    if lhs > rhs + 1e-9 && t > 0.0 {
                        return Err(format!(
                            "{}: smoothness fails at N={n:.0e}, Δ={d}, c={c}: \
                             T(N^c) = {lhs:.3} > c·T(N) = {rhs:.3}",
                            self.name
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

/// `log*` of `x` (base 2).
#[must_use]
pub fn log_star(mut x: f64) -> f64 {
    let mut k = 0.0;
    while x > 1.0 {
        x = x.log2();
        k += 1.0;
    }
    k
}

/// The constrained functions used by the paper's applications.
#[must_use]
pub fn standard_functions() -> Vec<ConstrainedFn> {
    vec![
        ConstrainedFn {
            name: "log^(1/3)_Δ N",
            f: |n, d| (n.ln() / d.max(2.0).ln()).max(1.0).powf(1.0 / 3.0),
            gamma: 0.34,
        },
        ConstrainedFn {
            name: "sqrt(min(Δ, log N))",
            f: |n, d| d.min(n.ln() / std::f64::consts::LN_2).max(1.0).sqrt(),
            gamma: 0.5,
        },
        ConstrainedFn {
            name: "log* N",
            f: |n, _| log_star(n),
            gamma: 0.2,
        },
    ]
}

/// One conditional lower bound produced by the Theorem 14 lifting.
#[derive(Debug, Clone)]
pub struct ConditionalLowerBound {
    /// Problem name.
    pub problem: &'static str,
    /// Graph family the bound holds on (a *normal* family).
    pub family: &'static str,
    /// Where the LOCAL bound comes from.
    pub local_bound_source: &'static str,
    /// The LOCAL round bound `T(N, Δ)` being lifted.
    pub local_t: ConstrainedFn,
    /// Whether the bound holds for deterministic algorithms only (the
    /// paper's new deterministic extension) or also randomized ones.
    pub deterministic_only: bool,
    /// Human-readable statement of the lifted MPC bound `Ω(log T)`.
    pub lifted_statement: &'static str,
}

impl ConditionalLowerBound {
    /// The lifted bound `log₂ T(N, Δ)` at concrete parameters — the paper's
    /// `Ω(log T(n, Δ))` with constant 1, for plotting/reporting.
    #[must_use]
    pub fn lifted_rounds(&self, n: f64, delta: f64) -> f64 {
        self.local_t.eval(n, delta).max(1.0).log2()
    }
}

/// The registry of the paper's headline applications (Theorems 28, 38, 40,
/// 42, 48; Lemma 51).
#[must_use]
pub fn registry() -> Vec<ConditionalLowerBound> {
    let fns = standard_functions();
    let log13 = fns[0].clone();
    let sqrtmin = fns[1].clone();
    let logstar = fns[2].clone();
    vec![
        ConditionalLowerBound {
            problem: "maximal matching / MIS (randomized)",
            family: "all graphs (matching: forests)",
            local_bound_source: "KMW06 via GKU19 Thm V.1",
            local_t: sqrtmin.clone(),
            deterministic_only: false,
            lifted_statement: "Ω(log log n) rounds for component-stable MPC (Theorem 28)",
        },
        ConditionalLowerBound {
            problem: "sinkless orientation (deterministic)",
            family: "forests (line graphs of)",
            local_bound_source: "BFH+16 + CKP19",
            local_t: log13.clone(),
            deterministic_only: true,
            lifted_statement: "Ω(log log_Δ n) rounds, stable deterministic MPC (Theorem 38)",
        },
        ConditionalLowerBound {
            problem: "(2Δ−2)-edge coloring (deterministic)",
            family: "forests",
            local_bound_source: "CHL+20",
            local_t: log13.clone(),
            deterministic_only: true,
            lifted_statement: "Ω(log log_Δ n) rounds, stable deterministic MPC (Theorem 40)",
        },
        ConditionalLowerBound {
            problem: "Δ-vertex coloring (deterministic)",
            family: "forests",
            local_bound_source: "CKP19",
            local_t: log13,
            deterministic_only: true,
            lifted_statement: "Ω(log log_Δ n) rounds, stable deterministic MPC (Theorem 42)",
        },
        ConditionalLowerBound {
            problem: "maximal matching / MIS (deterministic)",
            family: "all graphs",
            local_bound_source: "BBH+19",
            local_t: sqrtmin,
            deterministic_only: true,
            lifted_statement: "Ω(log Δ + log log n) rounds, stable deterministic MPC (Theorem 48)",
        },
        ConditionalLowerBound {
            problem: "Ω(n/Δ) independent set (randomized)",
            family: "all graphs",
            local_bound_source: "KKSS20 (shared-randomness adaptation)",
            local_t: logstar,
            deterministic_only: false,
            lifted_statement: "Ω(log log* n) rounds, stable MPC (Lemma 51 / Theorem 5)",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_functions_are_constrained() {
        for f in standard_functions() {
            f.check_constrained(4.0).unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn sqrt_n_is_not_constrained() {
        let bad = ConstrainedFn {
            name: "sqrt N",
            f: |n, _| n.sqrt(),
            gamma: 0.9,
        };
        assert!(bad.check_constrained(4.0).is_err());
    }

    #[test]
    fn tower_function_violates_smoothness() {
        // The paper's footnote 9 counterexample: a tower-of-2s of height
        // log* N − 3 is O(log log N) but not smooth.
        let tower = ConstrainedFn {
            name: "tower(log* N − 3)",
            f: |n, _| {
                let h = (log_star(n) - 3.0).max(0.0) as u32;
                let mut x = 1.0f64;
                for _ in 0..h {
                    x = f64::min(2f64.powf(x), 1e18);
                }
                x
            },
            gamma: 0.9,
        };
        assert!(
            tower.check_constrained(4.0).is_err(),
            "the footnote-9 counterexample must be rejected"
        );
    }

    #[test]
    fn registry_is_well_formed() {
        let reg = registry();
        assert_eq!(reg.len(), 6);
        for b in &reg {
            b.local_t
                .check_constrained(4.0)
                .unwrap_or_else(|e| panic!("{}: {e}", b.problem));
            // Lifted bounds grow (weakly) with n at fixed Δ.
            let small = b.lifted_rounds(1e4, 8.0);
            let large = b.lifted_rounds(1e16, 8.0);
            assert!(
                large + 1e-12 >= small,
                "{}: lifted bound shrank with n",
                b.problem
            );
        }
    }

    #[test]
    fn lifted_values_match_paper_scales() {
        let reg = registry();
        // MIS randomized: log sqrt(log n) = Θ(log log n).
        let mis = &reg[0];
        let v = mis.lifted_rounds(1e9, 1e9);
        let loglog = (1e9f64.ln() / std::f64::consts::LN_2).log2();
        assert!(v <= loglog && v >= loglog / 4.0, "v={v}, loglog={loglog}");
        // Large IS: log log* n is tiny.
        let lis = &reg[5];
        assert!(lis.lifted_rounds(1e9, 4.0) <= 3.0);
    }
}
