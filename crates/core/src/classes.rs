//! The complexity-class landscape of Section 2.5 (Definitions 15–18) as a
//! runnable taxonomy: every algorithm is placed into `S-DetMPC`,
//! `S-RandMPC`, `DetMPC` or `RandMPC` by combining its declared determinism
//! with the empirical stability verdict of [`crate::stability`].

use crate::stability::{verify_component_stability, StabilityReport};
use csmpc_algorithms::api::MpcVertexAlgorithm;
use csmpc_graph::rng::Seed;
use csmpc_graph::Graph;
use csmpc_mpc::MpcError;
use std::fmt;

/// The four classes of Definitions 15–18.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MpcClass {
    /// `S-DetMPC`: deterministic, component-stable.
    StableDeterministic,
    /// `S-RandMPC`: randomized, component-stable.
    StableRandomized,
    /// `DetMPC \ S-DetMPC`: deterministic, component-unstable.
    UnstableDeterministic,
    /// `RandMPC \ S-RandMPC`: randomized, component-unstable.
    UnstableRandomized,
}

impl MpcClass {
    /// The paper's name for the (sub)class.
    #[must_use]
    pub fn paper_name(&self) -> &'static str {
        match self {
            MpcClass::StableDeterministic => "S-DetMPC",
            MpcClass::StableRandomized => "S-RandMPC",
            MpcClass::UnstableDeterministic => "DetMPC (unstable)",
            MpcClass::UnstableRandomized => "RandMPC (unstable)",
        }
    }

    /// Containment per Definitions 15–18: every stable class sits inside
    /// its unstable superclass.
    #[must_use]
    pub fn superclass(&self) -> &'static str {
        match self {
            MpcClass::StableDeterministic | MpcClass::UnstableDeterministic => "DetMPC",
            MpcClass::StableRandomized | MpcClass::UnstableRandomized => "RandMPC",
        }
    }
}

impl fmt::Display for MpcClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.paper_name())
    }
}

/// The classification of one algorithm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    /// Algorithm name.
    pub algorithm: String,
    /// Assigned class.
    pub class: MpcClass,
    /// The stability evidence backing the placement.
    pub report: StabilityReport,
}

/// Classifies an algorithm by determinism flag + empirical stability.
///
/// # Errors
///
/// Propagates algorithm errors from the stability probes.
pub fn classify<A: MpcVertexAlgorithm + Sync>(
    alg: &A,
    component: &Graph,
    trials: usize,
    seed: Seed,
) -> Result<Placement, MpcError> {
    let report = verify_component_stability(alg, component, trials, seed)?;
    let class = match (alg.deterministic(), report.looks_stable()) {
        (true, true) => MpcClass::StableDeterministic,
        (false, true) => MpcClass::StableRandomized,
        (true, false) => MpcClass::UnstableDeterministic,
        (false, false) => MpcClass::UnstableRandomized,
    };
    Ok(Placement {
        algorithm: alg.name().to_string(),
        class,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use csmpc_algorithms::amplify::{AmplifiedLargeIs, StableOneShotIs};
    use csmpc_algorithms::det_is::DerandomizedLargeIs;
    use csmpc_graph::generators;

    #[test]
    fn landscape_matches_paper_assertions() {
        let comp = generators::cycle(10);
        let one_shot = classify(&StableOneShotIs, &comp, 8, Seed(1)).unwrap();
        assert_eq!(one_shot.class, MpcClass::StableRandomized);

        let amplified = classify(&AmplifiedLargeIs { repetitions: 8 }, &comp, 12, Seed(2)).unwrap();
        assert_eq!(amplified.class, MpcClass::UnstableRandomized);

        let derand = classify(&DerandomizedLargeIs, &comp, 12, Seed(3)).unwrap();
        assert_eq!(derand.class, MpcClass::UnstableDeterministic);
    }

    #[test]
    fn class_names() {
        assert_eq!(MpcClass::StableDeterministic.paper_name(), "S-DetMPC");
        assert_eq!(MpcClass::StableRandomized.superclass(), "RandMPC");
    }
}
