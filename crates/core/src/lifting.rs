//! The lifting reduction of Lemma 27 / Theorem 14: a *sensitive*
//! component-stable MPC algorithm yields a fast algorithm `B_st-conn` for
//! `D`-diameter `s-t` connectivity — which the connectivity conjecture
//! forbids, completing the conditional lower bound.
//!
//! Given a `D`-radius-identical pair `(G, v)`, `(G', v')` and an `s-t`
//! instance `H`, the reduction builds *simulation graphs* `G_H`, `G'_H`:
//! every surviving node `u` of `H` draws a level `h(u) ∈ {0..D}` and is
//! assigned a BFS layer of `G` (resp. `G'`) around the center — `s` gets
//! the ball of radius `h(s)`, `t` gets everything beyond distance `D`,
//! middle nodes get their exact layer. Edges follow `G`'s edges between
//! layers assigned to adjacent (or equal) `H`-nodes. The construction
//! guarantees:
//!
//! * if `s, t` are endpoints of a path whose levels increase consecutively
//!   up to `D`, the component of `v_s` is **exactly `G`** in `G_H` and
//!   **exactly `G'`** in `G'_H` — a sensitive algorithm answers differently;
//! * if `s` and `t` are disconnected, the two components of `v_s` are
//!   **identical**, so a component-stable algorithm answers identically.

use csmpc_algorithms::api::MpcVertexAlgorithm;
use csmpc_graph::rng::{Seed, SplitMix64};
use csmpc_graph::{Graph, GraphBuilder, NodeId, NodeName};
use csmpc_mpc::{Cluster, MpcConfig, MpcError};

/// The `D`-radius-identical pair driving the reduction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiftingPair {
    /// First graph `G`.
    pub g: Graph,
    /// Center of `G`.
    pub center_g: usize,
    /// Second graph `G'`.
    pub gp: Graph,
    /// Center of `G'`.
    pub center_gp: usize,
    /// The radius `D = T(N, Δ)` up to which the pair is identical.
    pub d: usize,
}

impl LiftingPair {
    /// Validates the Definition 23 precondition.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.g.n() == self.gp.n()
            && csmpc_graph::ball::radius_identical(
                &self.g,
                self.center_g,
                &self.gp,
                self.center_gp,
                self.d,
            )
    }
}

/// One simulation graph plus the index of the tracked copy `v_s` of the
/// pair's center.
#[derive(Debug, Clone)]
pub struct SimulationGraph {
    /// The assembled graph.
    pub graph: Graph,
    /// Index of `v_s` (the copy of the center assigned to `s`), if `s`
    /// survived filtering.
    pub v_s: Option<usize>,
}

/// Builds one simulation graph from `H` and the level assignment `h`,
/// using base graph `base` with center `center` (either side of the pair).
///
/// `h[u]` is each surviving `H`-node's level; `s` is assigned the ball of
/// radius `h[s]`, `t` the far set (distance > `d`), middle nodes their
/// exact layer. A full fresh-named copy of `base` enforces `Δ`, and
/// isolated nodes pad to `n_target`.
///
/// # Panics
///
/// Panics if `n_target` is too small for the construction.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn build_simulation_graph(
    h_graph: &Graph,
    s: usize,
    t: usize,
    h: &[usize],
    base: &Graph,
    center: usize,
    d: usize,
    n_target: usize,
) -> SimulationGraph {
    let dist = base.bfs_distances(center);
    let layer = |lv: usize| -> Vec<usize> { (0..base.n()).filter(|&w| dist[w] == lv).collect() };
    let ball = |r: usize| -> Vec<usize> { (0..base.n()).filter(|&w| dist[w] <= r).collect() };
    let far: Vec<usize> = (0..base.n()).filter(|&w| dist[w] > d).collect();

    // Filter H (paper: drop degree > 2 nodes; drop middle nodes whose
    // radius-1 h-neighborhood is not a consecutive triplet, t exempt).
    // Our revision adds one rule the legality analysis needs: a middle
    // node adjacent to `s` must sit at level `h(s) + 1` (levels increase
    // *away* from s), otherwise s's ball and the neighbor's layer would
    // place two copies of the same ID in one component.
    let keep: Vec<bool> = (0..h_graph.n())
        .map(|u| {
            if h_graph.degree(u) > 2 {
                return false;
            }
            if u == s || u == t {
                return h_graph.degree(u) == 1;
            }
            let nbrs: Vec<usize> = h_graph.neighbors(u).iter().map(|&w| w as usize).collect();
            if nbrs.len() != 2 {
                return false;
            }
            let mut non_t_levels = Vec::new();
            for &w in &nbrs {
                if w == t {
                    continue; // no requirement on h(t)
                }
                if w == s && h[u] != h[s] + 1 {
                    return false;
                }
                if h[w].abs_diff(h[u]) != 1 {
                    return false;
                }
                non_t_levels.push(h[w]);
            }
            if non_t_levels.len() == 2 && non_t_levels[0].abs_diff(non_t_levels[1]) != 2 {
                return false;
            }
            true
        })
        .collect();

    // Assigned base-nodes per surviving H-node.
    let assigned: Vec<Vec<usize>> = (0..h_graph.n())
        .map(|u| {
            if !keep[u] {
                return Vec::new();
            }
            if u == s {
                ball(h[s].min(d))
            } else if u == t {
                far.clone()
            } else if h[u] <= d {
                layer(h[u])
            } else {
                Vec::new()
            }
        })
        .collect();

    // Assemble: node (u, w) for each assigned w; IDs copy base, names fresh.
    let mut b = GraphBuilder::new();
    let mut index: std::collections::BTreeMap<(usize, usize), usize> = Default::default();
    let mut name_counter = 0u64;
    let mut v_s = None;
    for (u, set) in assigned.iter().enumerate() {
        for &w in set {
            let idx = b.add_node(base.id(w), NodeName(name_counter));
            name_counter += 1;
            index.insert((u, w), idx);
            if u == s && w == center {
                v_s = Some(idx);
            }
        }
    }
    // Edges: for u = u' (within one assignment) and for adjacent surviving
    // H-nodes, include every base edge between the assigned sets.
    let mut seen_edges = std::collections::BTreeSet::new();
    for (u, set) in assigned.iter().enumerate() {
        // Candidate partners: u itself plus its surviving H-neighbors.
        let mut partners: Vec<usize> = vec![u];
        partners.extend(
            h_graph
                .neighbors(u)
                .iter()
                .map(|&w| w as usize)
                .filter(|&w| keep[w]),
        );
        for &w in set {
            for &x in base.neighbors(w) {
                let x = x as usize;
                for &up in &partners {
                    if let (Some(&i), Some(&j)) = (index.get(&(u, w)), index.get(&(up, x))) {
                        let key = (i.min(j), i.max(j));
                        if i != j && seen_edges.insert(key) {
                            b.add_edge(key.0, key.1);
                        }
                    }
                }
            }
        }
    }
    // Δ-enforcing full copy of `base`, disconnected, fresh names.
    let offset = b.node_count();
    for w in 0..base.n() {
        b.add_node(base.id(w), NodeName(name_counter));
        name_counter += 1;
        let _ = w;
    }
    for (wu, wv) in base.edges() {
        b.add_edge(offset + wu, offset + wv);
    }
    // Pad with isolated nodes (shared fresh ID) to exactly n_target.
    let have = b.node_count();
    assert!(
        n_target >= have,
        "n_target {n_target} too small: construction already has {have} nodes"
    );
    let max_id = (0..base.n()).map(|w| base.id(w).0).max().unwrap_or(0);
    for _ in have..n_target {
        b.add_node(NodeId(max_id + 1), NodeName(name_counter));
        name_counter += 1;
    }
    let graph = b.build().expect("simulation graph is structurally valid");
    SimulationGraph { graph, v_s }
}

/// The planted *correct* level assignment for a path instance: `s = u_0,
/// u_1, …, u_{p−1} = t` with `h(s) = d − (p − 2)` and `h(u_i) = h(s) + i`.
/// Returns `None` when the path is too long (`p − 2 > d`).
#[must_use]
pub fn planted_levels(path_order: &[usize], d: usize, n_h: usize) -> Option<Vec<usize>> {
    let p = path_order.len();
    if p < 2 || p - 2 > d {
        return None;
    }
    let mut h = vec![0usize; n_h];
    let h_s = d - (p - 2);
    for (i, &u) in path_order.iter().enumerate() {
        h[u] = h_s + i;
    }
    Some(h)
}

/// Verdict of one `B_st-conn` run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StVerdict {
    /// Some simulation observed differing outputs at `v_s`: connected.
    Yes,
    /// All simulations agreed: (promised) disconnected.
    No,
}

/// Statistics of a `B_st-conn` run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BStConnRun {
    /// The verdict.
    pub verdict: StVerdict,
    /// Number of simulations executed.
    pub simulations: usize,
    /// Number of simulations whose `v_s` outputs differed.
    pub hits: usize,
}

/// The reduction `B_st-conn` (Lemma 27): runs `simulations` parallel
/// simulations with independent level draws; answers YES iff any
/// simulation's component-stable algorithm outputs differ at `v_s` between
/// `G_H` and `G'_H`.
///
/// # Errors
///
/// Propagates algorithm errors.
pub fn b_st_conn<A: MpcVertexAlgorithm>(
    alg: &A,
    pair: &LiftingPair,
    h_graph: &Graph,
    s: usize,
    t: usize,
    simulations: usize,
    master_seed: Seed,
) -> Result<BStConnRun, MpcError> {
    let n_target = sim_size_for(pair, h_graph);
    let mut hits = 0usize;
    for sim in 0..simulations {
        let sim_seed = master_seed.derive(sim as u64);
        let mut rng = SplitMix64::new(sim_seed.derive(1));
        let h: Vec<usize> = (0..h_graph.n()).map(|_| rng.index(pair.d + 1)).collect();
        if run_one_simulation(alg, pair, h_graph, s, t, &h, n_target, sim_seed)? {
            hits += 1;
        }
    }
    Ok(BStConnRun {
        verdict: if hits > 0 {
            StVerdict::Yes
        } else {
            StVerdict::No
        },
        simulations,
        hits,
    })
}

/// Like [`b_st_conn`] but with an explicit (e.g. planted) level assignment;
/// returns whether the simulation detected a difference at `v_s`.
///
/// # Errors
///
/// Propagates algorithm errors.
#[allow(clippy::too_many_arguments)]
pub fn run_one_simulation<A: MpcVertexAlgorithm>(
    alg: &A,
    pair: &LiftingPair,
    h_graph: &Graph,
    s: usize,
    t: usize,
    h: &[usize],
    n_target: usize,
    seed: Seed,
) -> Result<bool, MpcError> {
    let sim_g = build_simulation_graph(h_graph, s, t, h, &pair.g, pair.center_g, pair.d, n_target);
    let sim_gp =
        build_simulation_graph(h_graph, s, t, h, &pair.gp, pair.center_gp, pair.d, n_target);
    let (Some(vs_g), Some(vs_gp)) = (sim_g.v_s, sim_gp.v_s) else {
        return Ok(false);
    };
    let shared = seed.derive(7);
    let la = run_padded(alg, &sim_g.graph, shared)?;
    let lb = run_padded(alg, &sim_gp.graph, shared)?;
    Ok(la[vs_g] != lb[vs_gp])
}

/// A common simulation-graph size for both sides.
#[must_use]
pub fn sim_size_for(pair: &LiftingPair, h_graph: &Graph) -> usize {
    // Worst case: every H-node holds a full copy plus the Δ copy + slack.
    (h_graph.n() + 2) * pair.g.n() + 8
}

fn run_padded<A: MpcVertexAlgorithm>(
    alg: &A,
    g: &Graph,
    seed: Seed,
) -> Result<Vec<A::Label>, MpcError> {
    let cfg = MpcConfig {
        min_space: 1 << 14,
        ..Default::default()
    };
    let mut cluster = Cluster::new(cfg, g.n(), csmpc_mpc::graph_words(g), seed);
    alg.run(g, &mut cluster)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sensitivity::ComponentMaxId;
    use csmpc_graph::ball::identical_ball_path_pair;
    use csmpc_graph::generators;

    fn pair(d: usize, k: usize) -> LiftingPair {
        let (g, c, gp, cp) = identical_ball_path_pair(d, k);
        LiftingPair {
            g,
            center_g: c,
            gp,
            center_gp: cp,
            d,
        }
    }

    /// The planted YES instance reconstructs G exactly as CC(v_s).
    #[test]
    fn planted_path_reconstructs_g() {
        let pr = pair(4, 3);
        assert!(pr.is_valid());
        // H: a path of p = 4 nodes, s = 0, t = 3.
        let h_graph = generators::path(4);
        let order = [0usize, 1, 2, 3];
        let h = planted_levels(&order, pr.d, 4).unwrap();
        let n_target = sim_size_for(&pr, &h_graph);
        let sim = build_simulation_graph(&h_graph, 0, 3, &h, &pr.g, pr.center_g, pr.d, n_target);
        let vs = sim.v_s.expect("s survives");
        let (cc, pos) = csmpc_graph::ops::component_of(&sim.graph, vs);
        assert_eq!(cc.n(), pr.g.n(), "component of v_s must be all of G");
        assert_eq!(cc.m(), pr.g.m());
        assert_eq!(cc.id(pos), pr.g.id(pr.center_g));
        assert_eq!(cc.id_fingerprint(), pr.g.id_fingerprint());
        assert!(sim.graph.is_legal(), "simulation graph must stay legal");
    }

    /// On a disconnected instance the two components of v_s coincide.
    #[test]
    fn disconnected_instance_components_identical() {
        let pr = pair(3, 4);
        // H: two disjoint paths; s in one, t in the other.
        let a = generators::path(3);
        let b = csmpc_graph::ops::with_fresh_names(&generators::path(3), 50);
        let h_graph = csmpc_graph::ops::disjoint_union(&[&a, &b]);
        let (s, t) = (0usize, 5usize);
        let n_target = sim_size_for(&pr, &h_graph);
        for trial in 0..10u64 {
            let mut rng = SplitMix64::new(Seed(trial));
            let h: Vec<usize> = (0..h_graph.n()).map(|_| rng.index(pr.d + 1)).collect();
            let sg = build_simulation_graph(&h_graph, s, t, &h, &pr.g, pr.center_g, pr.d, n_target);
            let sgp =
                build_simulation_graph(&h_graph, s, t, &h, &pr.gp, pr.center_gp, pr.d, n_target);
            let (Some(i), Some(j)) = (sg.v_s, sgp.v_s) else {
                continue;
            };
            let (cc_a, _) = csmpc_graph::ops::component_of(&sg.graph, i);
            let (cc_b, _) = csmpc_graph::ops::component_of(&sgp.graph, j);
            assert_eq!(
                cc_a.id_fingerprint(),
                cc_b.id_fingerprint(),
                "trial {trial}: disconnected components must be identical"
            );
        }
    }

    /// End-to-end: B_st-conn distinguishes connected from disconnected
    /// instances given a sensitive component-stable algorithm.
    #[test]
    fn b_st_conn_distinguishes() {
        let pr = pair(3, 4);
        // YES instance: path of 4 nodes, s-t at the ends.
        let yes_h = generators::path(4);
        // Use planted levels (deterministic YES witness) plus random sims.
        let h = planted_levels(&[0, 1, 2, 3], pr.d, 4).unwrap();
        let hit = run_one_simulation(
            &ComponentMaxId,
            &pr,
            &yes_h,
            0,
            3,
            &h,
            sim_size_for(&pr, &yes_h),
            Seed(1),
        )
        .unwrap();
        assert!(hit, "planted YES simulation must detect the difference");

        // NO instance: s and t in different components.
        let a = generators::path(2);
        let b2 = csmpc_graph::ops::with_fresh_names(&generators::path(2), 50);
        let no_h = csmpc_graph::ops::disjoint_union(&[&a, &b2]);
        let run = b_st_conn(&ComponentMaxId, &pr, &no_h, 0, 3, 40, Seed(2)).unwrap();
        assert_eq!(run.verdict, StVerdict::No, "hits = {}", run.hits);
    }

    /// Randomized YES detection: with D small, random levels hit the
    /// correct assignment within a reasonable number of simulations.
    #[test]
    fn b_st_conn_yes_with_random_levels() {
        let pr = pair(2, 3);
        let yes_h = generators::path(3); // p = 3, need h = [d-1, d, *]
        let run = b_st_conn(&ComponentMaxId, &pr, &yes_h, 0, 2, 200, Seed(3)).unwrap();
        assert_eq!(run.verdict, StVerdict::Yes, "no hit in 200 simulations");
    }

    #[test]
    fn planted_levels_bounds() {
        assert!(planted_levels(&[0, 1], 0, 2).is_some()); // p=2, d=0
        assert!(planted_levels(&[0, 1, 2], 0, 3).is_none()); // too long
        let h = planted_levels(&[0, 1, 2, 3], 5, 4).unwrap();
        assert_eq!(h[0], 3);
        assert_eq!(h[1], 4);
        assert_eq!(h[2], 5);
    }
}
