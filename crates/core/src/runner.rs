//! One-call evaluation harness: run an MPC algorithm against a problem and
//! collect correctness + resource evidence — the workflow every experiment
//! table is built from.

use csmpc_algorithms::api::{MpcEdgeAlgorithm, MpcVertexAlgorithm};
use csmpc_graph::rng::Seed;
use csmpc_graph::Graph;
use csmpc_mpc::Stats;
use csmpc_mpc::{
    run_supervised, Cluster, FaultPlan, MpcConfig, MpcError, ParallelismMode, RecoveryEvent,
    RecoveryPolicy, SupervisedOutcome, SupervisedRun, SupervisorConfig,
};
use csmpc_parallel::par_map_range;
use csmpc_problems::matching::EdgeProblem;
use csmpc_problems::problem::{GraphProblem, Violation};

/// The outcome of one evaluated run.
#[derive(Debug, Clone)]
pub struct Evaluation<L> {
    /// Algorithm name.
    pub algorithm: String,
    /// Problem name.
    pub problem: String,
    /// Produced labels.
    pub labels: Vec<L>,
    /// Resource ledger of the run.
    pub stats: Stats,
    /// Validation outcome.
    pub validity: Result<(), Violation>,
}

impl<L> Evaluation<L> {
    /// Did the run produce a valid output?
    #[must_use]
    pub fn valid(&self) -> bool {
        self.validity.is_ok()
    }
}

/// Builds the standard evaluation cluster (`φ = 0.5`, roomy floor).
#[must_use]
pub fn evaluation_cluster(g: &Graph, seed: Seed) -> Cluster {
    let cfg = MpcConfig {
        min_space: 1 << 14,
        ..Default::default()
    };
    Cluster::new(cfg, g.n(), csmpc_mpc::graph_words(g), seed)
}

/// Runs a vertex algorithm and validates it against a vertex problem.
///
/// # Errors
///
/// Propagates algorithm errors (validation failures are reported in the
/// evaluation, not as errors).
pub fn evaluate_vertex<A, P>(
    alg: &A,
    problem: &P,
    g: &Graph,
    seed: Seed,
) -> Result<Evaluation<A::Label>, MpcError>
where
    A: MpcVertexAlgorithm,
    P: GraphProblem<Label = A::Label>,
{
    let mut cluster = evaluation_cluster(g, seed);
    let labels = alg.run(g, &mut cluster)?;
    let validity = problem.validate(g, &labels);
    Ok(Evaluation {
        algorithm: alg.name().to_string(),
        problem: problem.name().to_string(),
        labels,
        stats: cluster.stats().clone(),
        validity,
    })
}

/// An [`Evaluation`] produced under an armed fault plan, together with the
/// recovery actions the cluster had to take.
#[derive(Debug, Clone)]
pub struct FaultEvaluation<L> {
    /// The ordinary evaluation outcome (labels, stats, validity). The
    /// stats include every recovery charge — recovery is never free.
    pub evaluation: Evaluation<L>,
    /// One entry per recovered crash, in recovery order.
    pub recoveries: Vec<RecoveryEvent>,
}

/// Runs a vertex algorithm under an armed fault plan and validates the
/// (possibly recovered) output.
///
/// # Errors
///
/// Propagates algorithm errors, including unrecovered machine failures
/// (`MpcError::MachineFailed` under `RecoveryPolicy::FailFast` or an
/// exhausted retry budget).
pub fn evaluate_vertex_with_faults<A, P>(
    alg: &A,
    problem: &P,
    g: &Graph,
    seed: Seed,
    plan: &FaultPlan,
    policy: RecoveryPolicy,
) -> Result<FaultEvaluation<A::Label>, MpcError>
where
    A: MpcVertexAlgorithm,
    P: GraphProblem<Label = A::Label>,
{
    let mut cluster = evaluation_cluster(g, seed);
    cluster.arm_faults(plan.clone(), policy);
    let labels = alg.run(g, &mut cluster)?;
    let validity = problem.validate(g, &labels);
    Ok(FaultEvaluation {
        evaluation: Evaluation {
            algorithm: alg.name().to_string(),
            problem: problem.name().to_string(),
            labels,
            stats: cluster.stats().clone(),
            validity,
        },
        recoveries: cluster.recovery_log().to_vec(),
    })
}

/// An evaluation produced by the supervision layer: the run either
/// completed (validated like any other evaluation) or degraded to a
/// partial output whose healthy components carry trustworthy labels.
#[derive(Debug, Clone)]
pub struct SupervisedEvaluation<L> {
    /// Algorithm name.
    pub algorithm: String,
    /// Problem name.
    pub problem: String,
    /// The full supervised run: outcome (complete or partial), ledger,
    /// recovery log, supervision log, quarantined machines.
    pub run: SupervisedRun<L>,
    /// Validation outcome — `Some` only when the run completed; a
    /// degraded partial output is certified per-component by the
    /// degraded-immunity verifier instead of whole-graph validation.
    pub validity: Option<Result<(), Violation>>,
}

impl<L> SupervisedEvaluation<L> {
    /// Completed and validated.
    #[must_use]
    pub fn valid(&self) -> bool {
        matches!(self.validity, Some(Ok(())))
    }
}

/// Runs a vertex algorithm under supervision: straggler speculation,
/// quarantine, bounded backoff, and component-scoped graceful
/// degradation when the recovery budget runs out.
///
/// # Errors
///
/// Propagates algorithm errors other than the machine failures the
/// supervisor degrades through (bandwidth/space/addressing violations
/// are real model errors and still fail the call).
pub fn evaluate_vertex_supervised<A, P>(
    alg: &A,
    problem: &P,
    g: &Graph,
    seed: Seed,
    plan: &FaultPlan,
    policy: RecoveryPolicy,
    supervisor: SupervisorConfig,
) -> Result<SupervisedEvaluation<A::Label>, MpcError>
where
    A: MpcVertexAlgorithm,
    P: GraphProblem<Label = A::Label>,
{
    let template = evaluation_cluster(g, seed);
    let run = run_supervised(g, &template, plan, policy, supervisor, |g, cluster| {
        alg.run(g, cluster)
    })?;
    let validity = match &run.outcome {
        SupervisedOutcome::Complete(labels) => Some(problem.validate(g, labels)),
        SupervisedOutcome::Degraded(_) => None,
    };
    Ok(SupervisedEvaluation {
        algorithm: alg.name().to_string(),
        problem: problem.name().to_string(),
        run,
        validity,
    })
}

/// Runs an edge algorithm and validates it against an edge problem.
///
/// # Errors
///
/// Propagates algorithm errors.
pub fn evaluate_edge<A, P>(
    alg: &A,
    problem: &P,
    g: &Graph,
    seed: Seed,
) -> Result<Evaluation<A::Label>, MpcError>
where
    A: MpcEdgeAlgorithm,
    P: EdgeProblem<Label = A::Label>,
{
    let mut cluster = evaluation_cluster(g, seed);
    let labels = alg.run(g, &mut cluster)?;
    let validity = problem.validate(g, &labels);
    Ok(Evaluation {
        algorithm: alg.name().to_string(),
        problem: problem.name().to_string(),
        labels,
        stats: cluster.stats().clone(),
        validity,
    })
}

/// Success probability over `trials` independent seeds.
///
/// Trial `t` always runs with seed `master_seed.derive(t)` against a
/// freshly-reset cluster ([`Cluster::reset_for_repetition`] wipes the
/// ledger, the provenance log, and the machine component tags), so the
/// estimate is a pure function of `(alg, problem, g, trials, master_seed)`.
///
/// Runs with [`ParallelismMode::default`]; use
/// [`success_probability_with_mode`] to force a mode.
///
/// # Errors
///
/// Propagates algorithm errors from any trial.
pub fn success_probability<A, P>(
    alg: &A,
    problem: &P,
    g: &Graph,
    trials: u64,
    master_seed: Seed,
) -> Result<f64, MpcError>
where
    A: MpcVertexAlgorithm + Sync,
    P: GraphProblem<Label = A::Label> + Sync,
{
    success_probability_with_mode(
        alg,
        problem,
        g,
        trials,
        master_seed,
        ParallelismMode::default(),
    )
}

/// [`success_probability`] with an explicit [`ParallelismMode`].
///
/// Each trial clones a template cluster, resets it, and derives its own
/// seed from `master_seed` and the trial index — no state flows between
/// trials, so the sweep is a pure per-trial map and both modes return the
/// same estimate (and the same first error, in trial order, if any trial
/// fails).
///
/// # Errors
///
/// Propagates algorithm errors from any trial.
pub fn success_probability_with_mode<A, P>(
    alg: &A,
    problem: &P,
    g: &Graph,
    trials: u64,
    master_seed: Seed,
    mode: ParallelismMode,
) -> Result<f64, MpcError>
where
    A: MpcVertexAlgorithm + Sync,
    P: GraphProblem<Label = A::Label> + Sync,
{
    let base = evaluation_cluster(g, master_seed);
    let verdicts: Vec<Result<bool, MpcError>> =
        par_map_range(mode, usize::try_from(trials).unwrap_or(usize::MAX), |t| {
            let mut cluster = base.clone();
            cluster.reset_for_repetition();
            cluster.set_shared_seed(master_seed.derive(t as u64));
            let labels = alg.run(g, &mut cluster)?;
            Ok(problem.validate(g, &labels).is_ok())
        });
    let mut ok = 0u64;
    for verdict in verdicts {
        if verdict? {
            ok += 1;
        }
    }
    Ok(ok as f64 / trials.max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use csmpc_algorithms::amplify::{AmplifiedLargeIs, StableOneShotIs};
    use csmpc_algorithms::mpc_edge::SinklessOrientationMpc;
    use csmpc_graph::generators;
    use csmpc_problems::mis::LargeIndependentSet;
    use csmpc_problems::sinkless::SinklessOrientation;

    #[test]
    fn vertex_evaluation_roundtrip() {
        let g = generators::cycle(40);
        let ev = evaluate_vertex(
            &AmplifiedLargeIs { repetitions: 0 },
            &LargeIndependentSet { c: 0.2 },
            &g,
            Seed(1),
        )
        .unwrap();
        assert!(ev.valid());
        assert!(ev.stats.rounds > 0);
        assert_eq!(ev.labels.len(), 40);
    }

    #[test]
    fn edge_evaluation_roundtrip() {
        let g = generators::random_regular(24, 4, Seed(2));
        let ev = evaluate_edge(&SinklessOrientationMpc, &SinklessOrientation, &g, Seed(3)).unwrap();
        assert!(ev.valid());
        assert_eq!(ev.labels.len(), g.m());
    }

    #[test]
    fn repeated_trials_do_not_leak_state() {
        // One trial on a reused cluster must cost exactly what a fresh
        // cluster costs: reset_for_repetition clears the ledger, the
        // provenance log, and the machine component tags (reset_stats
        // alone leaks the latter two).
        let g = generators::cycle(40);
        let alg = StableOneShotIs;
        let p = LargeIndependentSet { c: 0.1 };
        let fresh = evaluate_vertex(&alg, &p, &g, Seed(7)).unwrap();
        let mut cluster = evaluation_cluster(&g, Seed(0));
        for _ in 0..3 {
            cluster.reset_for_repetition();
            assert!(
                (0..cluster.num_machines()).all(|m| cluster.machine_components(m).is_empty()),
                "machine tags leaked across repetitions"
            );
            cluster.set_shared_seed(Seed(7));
            let labels = alg.run(&g, &mut cluster).unwrap();
            assert_eq!(labels, fresh.labels);
            assert_eq!(cluster.stats(), &fresh.stats, "ledger leaked");
        }
    }

    #[test]
    fn ball_collecting_trials_repeat_identically_and_never_reuse_stale_balls() {
        use csmpc_mpc::DistributedGraph;
        // Repetition loops (success-probability / stability / sensitivity
        // trials) re-collect the same graph's balls every trial; the
        // process-wide ball cache serves them from one computed set. That
        // must be invisible: every trial returns the same balls and the
        // same ledger charges as the first.
        let g = generators::cycle(40);
        let mut cluster = evaluation_cluster(&g, Seed(3));
        let dg = DistributedGraph::distribute(&g, &mut cluster).unwrap();
        let first = dg.collect_balls(&mut cluster, 2).unwrap();
        let first_stats = cluster.stats().clone();
        for t in 0..3 {
            cluster.reset_for_repetition();
            cluster.set_shared_seed(Seed(3));
            let dg_t = DistributedGraph::distribute(&g, &mut cluster).unwrap();
            let balls = dg_t.collect_balls(&mut cluster, 2).unwrap();
            assert_eq!(*balls, *first, "trial {t} returned different balls");
            assert_eq!(
                cluster.stats(),
                &first_stats,
                "trial {t} charged differently"
            );
        }
        // A mutated input (the cycle minus one edge — the shape of a
        // fault-perturbed trial) must never be served the old graph's
        // cached balls: the key is the exact graph content.
        let mutated = generators::path(40);
        let mut cl2 = evaluation_cluster(&mutated, Seed(3));
        let dg2 = DistributedGraph::distribute(&mutated, &mut cl2).unwrap();
        let mutated_balls = dg2.collect_balls(&mut cl2, 2).unwrap();
        assert_eq!(mutated_balls[0].0.n(), 3, "path endpoint ball is one-sided");
        assert_eq!(first[0].0.n(), 5, "cycle ball spans both sides");
    }

    #[test]
    fn fault_evaluation_recovers_and_charges() {
        let g = generators::cycle(40);
        let p = LargeIndependentSet { c: 0.1 };
        let baseline = evaluate_vertex(&StableOneShotIs, &p, &g, Seed(9)).unwrap();
        let plan = FaultPlan::quiet(Seed(9)).crash(0, 2);
        let out = evaluate_vertex_with_faults(
            &StableOneShotIs,
            &p,
            &g,
            Seed(9),
            &plan,
            RecoveryPolicy::restart(4),
        )
        .unwrap();
        assert_eq!(out.evaluation.labels, baseline.labels);
        assert_eq!(out.recoveries.len(), 1);
        assert!(out.evaluation.stats.rounds > baseline.stats.rounds);
        assert!(out.evaluation.stats.total_words > baseline.stats.total_words);
    }

    #[test]
    fn fault_evaluation_fail_fast_surfaces_crash() {
        let g = generators::cycle(40);
        let p = LargeIndependentSet { c: 0.1 };
        let plan = FaultPlan::quiet(Seed(9)).crash(0, 2);
        let err = evaluate_vertex_with_faults(
            &StableOneShotIs,
            &p,
            &g,
            Seed(9),
            &plan,
            RecoveryPolicy::FailFast,
        )
        .unwrap_err();
        assert!(matches!(err, MpcError::MachineFailed { machine: 0, .. }));
    }

    #[test]
    fn supervised_evaluation_completes_when_recoverable() {
        let g = generators::cycle(40);
        let p = LargeIndependentSet { c: 0.1 };
        let baseline = evaluate_vertex(&StableOneShotIs, &p, &g, Seed(9)).unwrap();
        let plan = FaultPlan::quiet(Seed(9)).crash(0, 2);
        let out = evaluate_vertex_supervised(
            &StableOneShotIs,
            &p,
            &g,
            Seed(9),
            &plan,
            RecoveryPolicy::restart(4),
            SupervisorConfig::default(),
        )
        .unwrap();
        assert!(out.valid());
        match &out.run.outcome {
            SupervisedOutcome::Complete(labels) => assert_eq!(labels, &baseline.labels),
            other => panic!("expected a complete outcome, got {other:?}"),
        }
        assert_eq!(out.run.recoveries.len(), 1);
        assert!(out.run.stats.recovery_rounds > 0);
    }

    #[test]
    fn supervised_evaluation_degrades_when_budget_exhausted() {
        // Two components; crash a machine until the zero-retry budget
        // blows. The run must degrade rather than error, withholding only
        // the tainted components' labels.
        let a = generators::cycle(12);
        let b = csmpc_graph::ops::with_fresh_names(&generators::cycle(30), 900);
        let g = csmpc_graph::ops::disjoint_union(&[&a, &b]);
        let p = LargeIndependentSet { c: 0.1 };
        let plan = FaultPlan::quiet(Seed(5)).crash(0, 2);
        let out = evaluate_vertex_supervised(
            &StableOneShotIs,
            &p,
            &g,
            Seed(5),
            &plan,
            RecoveryPolicy::restart(0),
            SupervisorConfig::default(),
        )
        .unwrap();
        assert!(out.run.is_degraded());
        assert!(out.validity.is_none());
        match &out.run.outcome {
            SupervisedOutcome::Degraded(partial) => {
                assert_eq!(partial.labels.len(), g.n());
                assert!(partial.tainted_nodes > 0, "nothing was tainted");
                // Degrading is never free: the salvage re-run landed on
                // the primary ledger as recovery overhead.
                assert!(out.run.stats.recovery_rounds > 0);
                assert!(partial.salvage_stats.is_some());
            }
            other => panic!("expected a degraded outcome, got {other:?}"),
        }
    }

    #[test]
    fn success_probability_ordering() {
        // Amplified beats one-shot at the aggressive threshold.
        let g = generators::cycle(90);
        let p = LargeIndependentSet { c: 2.0 / 3.0 };
        let ps = success_probability(&StableOneShotIs, &p, &g, 60, Seed(4)).unwrap();
        let pa =
            success_probability(&AmplifiedLargeIs { repetitions: 0 }, &p, &g, 60, Seed(5)).unwrap();
        assert!(pa >= ps, "amplified {pa} vs one-shot {ps}");
        assert!(pa > 0.9);
    }
}
