//! Seeded violation fixture for [`Lint::Determinism`]: a parallel iterator
//! chain consumed by `.for_each`, whose side-effect order is unspecified —
//! the accumulated total is order-dependent under floating point or any
//! non-commutative merge, and even here the *interleaving* is unordered.
//! Not compiled into any crate; scanned by `tests/conformance.rs`.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn racy_total(items: &[u64]) -> u64 {
    let total = AtomicU64::new(0);
    items.par_iter().for_each(|&x| {
        total.fetch_add(x, Ordering::Relaxed);
    });
    total.load(Ordering::SeqCst)
}

pub fn unmaterialized_count(items: &[u64]) -> usize {
    items.par_iter().filter(|&&x| x > 0).count()
}
