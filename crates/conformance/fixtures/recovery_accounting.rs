//! Fixture: seeded `recovery-accounting` violations. Not compiled —
//! scanned by the analyzer's tests, which assert the exact lines below.

impl Cluster {
    /// Accounted recovery: restores a checkpoint and charges the replayed
    /// rounds plus the reshipped words. Must NOT be flagged.
    fn restore_checkpoint(&mut self, cp: &Checkpoint) -> usize {
        self.inboxes = cp.inboxes.clone();
        self.charge_rounds(1);
        self.charge_words(cp.words(), cp.words() as u64);
        cp.words()
    }

    /// Unaccounted: rolls cluster state back for free. Line 15: violation.
    fn recover_silently(&mut self, cp: &Checkpoint) {
        self.inboxes = cp.inboxes.clone();
        self.provenance = cp.provenance.clone();
    }

    /// Read-only recovery inspection — `&self` is out of scope.
    pub fn recovery_log(&self) -> &[RecoveryEvent] {
        &self.recovery_log
    }
}

/// Unaccounted free function driving the cluster. Line 27: violation.
pub fn retry_lost_messages(cluster: &mut Cluster, pending: &[Message]) {
    for msg in pending {
        cluster.inboxes[msg.dst].push(msg.clone());
    }
}

/// A user program restoring its own snapshot is not cluster state.
impl MachineProgram for FixtureSum {
    fn restore(&mut self, snapshot: &[u64]) {
        self.acc = snapshot[0];
    }
}

// conformance: allow(recovery-accounting)
pub fn retry_suppressed(cluster: &mut Cluster) {
    cluster.inboxes.clear();
}

impl Cluster {
    /// Accounted speculation: the spare's duplicated work and re-shipped
    /// snapshot land on the ledger via `charge_recovery`. Must NOT be
    /// flagged.
    fn speculate_straggler(&mut self, machine: usize) {
        self.spares.push(machine);
        self.charge_recovery(1, self.max_storage);
    }

    /// Unaccounted: decommissions a machine for free — migration words
    /// never hit the ledger. Line 56: violation.
    fn quarantine_machine(&mut self, machine: usize) {
        self.quarantined.insert(machine);
        self.spares.retain(|&m| m != machine);
    }
}

/// Unaccounted free function idling the barrier before a retry — the
/// stall rounds are real and must be charged. Line 64: violation.
pub fn backoff_before_retry(cluster: &mut Cluster, stall: usize) {
    cluster.backoff_until = cluster.round + stall;
}

// conformance: allow(recovery-accounting)
fn quarantine_suppressed(cluster: &mut Cluster) {
    cluster.quarantined.clear();
}
