//! Fixture: seeded `recovery-accounting` violations. Not compiled —
//! scanned by the analyzer's tests, which assert the exact lines below.

impl Cluster {
    /// Accounted recovery: restores a checkpoint and charges the replayed
    /// rounds plus the reshipped words. Must NOT be flagged.
    fn restore_checkpoint(&mut self, cp: &Checkpoint) -> usize {
        self.inboxes = cp.inboxes.clone();
        self.charge_rounds(1);
        self.charge_words(cp.words(), cp.words() as u64);
        cp.words()
    }

    /// Unaccounted: rolls cluster state back for free. Line 15: violation.
    fn recover_silently(&mut self, cp: &Checkpoint) {
        self.inboxes = cp.inboxes.clone();
        self.provenance = cp.provenance.clone();
    }

    /// Read-only recovery inspection — `&self` is out of scope.
    pub fn recovery_log(&self) -> &[RecoveryEvent] {
        &self.recovery_log
    }
}

/// Unaccounted free function driving the cluster. Line 27: violation.
pub fn retry_lost_messages(cluster: &mut Cluster, pending: &[Message]) {
    for msg in pending {
        cluster.inboxes[msg.dst].push(msg.clone());
    }
}

/// A user program restoring its own snapshot is not cluster state.
impl MachineProgram for FixtureSum {
    fn restore(&mut self, snapshot: &[u64]) {
        self.acc = snapshot[0];
    }
}

// conformance: allow(recovery-accounting)
pub fn retry_suppressed(cluster: &mut Cluster) {
    cluster.inboxes.clear();
}
