//! Clean charge-flow counterpart: the same shapes as the violation
//! fixture, but every wire-touching path reaches a `Stats` charge — the
//! delegation pattern the token-level lints falsely flag.

/// No charge token in this body at all — the flow pass follows the call
/// into `staged_shuffle`, which accounts.
pub fn shuffle_round(cluster: &mut Cluster) -> Result<(), MpcError> {
    staged_shuffle(cluster);
    Ok(())
}

fn staged_shuffle(cluster: &mut Cluster) {
    for machine in 0..cluster.num_machines() {
        cluster.inboxes[machine].rotate_left(1);
    }
    cluster.charge_words(cluster.num_machines());
}

/// Charge delegated two levels down.
pub fn resend_round(cluster: &mut Cluster) {
    stage_resend(cluster);
}

fn stage_resend(cluster: &mut Cluster) {
    drain_retransmit(cluster);
}

fn drain_retransmit(cluster: &mut Cluster) {
    let shipped = cluster.pending_retransmit.len();
    cluster.pending_retransmit.truncate(0);
    cluster.charge_recovery(1, shipped);
}

/// Mutating but communication-free: setters never need a charge.
pub fn set_plan(cluster: &mut Cluster, plan: Plan) {
    cluster.plan = Some(plan);
}
