//! Seeded stability-flow violations: an implicit stability claim and a
//! broken explicit one.

fn distribute(cluster: &mut Cluster) {
    cluster.tag_machine(0, 1);
}

fn global_tally(cluster: &mut Cluster) -> u64 {
    aggregate_all(cluster)
}

fn aggregate_all(cluster: &mut Cluster) -> u64 {
    cluster.provenance_mut().record_global_mix(7);
    0
}

// Flagged (warning, at the impl line): touches provenance via distribute
// but silently inherits the default component_stable().
impl MpcVertexAlgorithm for SilentDefault {
    fn run(&self, cluster: &mut Cluster) -> Vec<bool> {
        distribute(cluster);
        Vec::new()
    }
}

// Flagged (error, at the impl line): claims stability but transitively
// reaches a cross-component mix two calls down (run -> global_tally ->
// aggregate_all).
impl MpcVertexAlgorithm for ClaimsStableButMixes {
    fn run(&self, cluster: &mut Cluster) -> Vec<bool> {
        distribute(cluster);
        let _ = global_tally(cluster);
        Vec::new()
    }

    fn component_stable(&self) -> bool {
        true
    }
}
