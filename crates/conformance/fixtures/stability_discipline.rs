//! Fixture: seeded `stability-discipline` violations. Not compiled —
//! scanned by the analyzer's tests, which assert the exact lines below.

pub struct GlobalPeeker;

impl MpcVertexAlgorithm for GlobalPeeker {
    type Label = u64;

    fn name(&self) -> &str {
        "global-peeker"
    }

    fn deterministic(&self) -> bool {
        true
    }

    fn component_stable(&self) -> bool {
        true // the lie the lint exists to catch
    }

    fn run(&self, g: &Graph, cluster: &mut Cluster) -> Result<Vec<u64>, MpcError> {
        let dg = DistributedGraph::distribute(g, cluster)?;
        let ones = vec![1u64; g.n()];
        let total = dg.aggregate(cluster, &ones, |a, b| a + b); // line 24: violation
        let tag = g.name(0); // line 25: violation (name read)
        let echo = dg.broadcast(cluster, &total); // line 26: violation
        let me = self.name(); // self.name() is the algorithm's own name: fine
        let n = dg.count_nodes(cluster); // approved API: fine
        let delta = dg.max_degree(cluster); // approved API: fine
        let _ = (tag, echo, me, delta);
        Ok(vec![n as u64; g.n()])
    }
}

pub struct HonestGlobal;

/// Does the same global reads but declares itself unstable — the lint must
/// stay silent here.
impl MpcVertexAlgorithm for HonestGlobal {
    type Label = u64;

    fn name(&self) -> &str {
        "honest-global"
    }

    fn deterministic(&self) -> bool {
        true
    }

    fn run(&self, g: &Graph, cluster: &mut Cluster) -> Result<Vec<u64>, MpcError> {
        let dg = DistributedGraph::distribute(g, cluster)?;
        let ones = vec![1u64; g.n()];
        let total = dg.aggregate(cluster, &ones, |a, b| a + b); // fine: unstable
        Ok(vec![total.unwrap_or(0); g.n()])
    }
}
