//! Seeded service-layer charge-flow violations: the scheduler entry
//! points (`run_job`, `execute_attempt`) are *private* — before the
//! entry-name extension the flow pass never rooted a search at them, so
//! an uncharged wire touch below the service layer went unseen.

// Flagged: the attempt runner mutates cluster state and reaches the
// inbox machinery through a helper, with no charge on any path.
fn execute_attempt(cluster: &mut Cluster) -> Result<(), MpcError> {
    drain_stale_inboxes(cluster);
    Ok(())
}

// Also flagged: the direct wire touch, witnessed from execute_attempt.
fn drain_stale_inboxes(cluster: &mut Cluster) {
    for machine in 0..cluster.num_machines() {
        cluster.inboxes[machine].clear();
    }
}

// Flagged: the workload dispatcher re-ships retransmission state two
// calls down without ever charging recovery words.
fn run_job(cluster: &mut Cluster) -> Result<(), MpcError> {
    requeue_lost(cluster);
    Ok(())
}

// Also flagged: transitively wire-touching, still no charge below.
fn requeue_lost(cluster: &mut Cluster) {
    push_retransmit(cluster);
}

// Also flagged: the retransmission buffer is wire state.
fn push_retransmit(cluster: &mut Cluster) {
    cluster.pending_retransmit.push(0);
}
