//! Clean crash-recovery replay paths: the journal-replay roots
//! (`recover`, `replay_journal` — private, rooted only through the
//! entry-name extension) charge the frames they re-read via
//! `charge_replay`, so both the charge-flow pass and the
//! recovery-accounting token lint stay silent.

// The recovery root delegates the wire-level rebuild; the replay ledger
// charge covers the whole chain.
fn recover(cluster: &mut Cluster) -> Result<(), MpcError> {
    cluster.charge_replay(1, 8);
    replay_journal(cluster);
    Ok(())
}

// Re-stages in-flight wire state from the log and charges the frames it
// replays — clean under both lints.
fn replay_journal(cluster: &mut Cluster) {
    cluster.charge_replay(1, cluster.pending_retransmit.len() as u64);
    cluster.pending_retransmit.clear();
}

// Communication-free bookkeeping: mutates the cluster but never touches
// the wire, so the flow pass owes it nothing.
fn note_resume(cluster: &mut Cluster) {
    cluster.attempt_count += 1;
}
