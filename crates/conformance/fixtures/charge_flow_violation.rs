//! Seeded charge-flow violations: uncharged communication one call away
//! from a charged entry point — the case the token-level lints provably
//! miss (they only inspect `pub fn` bodies one at a time).

/// The entry point charges for its own work, so the token-level
/// `unaccounted-primitive` lint passes it; the leak hides in the helper.
pub fn shuffle_round(cluster: &mut Cluster) -> Result<(), MpcError> {
    cluster.charge_rounds(1);
    raw_shuffle(cluster);
    Ok(())
}

// Private, so the token lint never looks at it: moves words on the wire
// (inbox staging) with no charge on any path. The `fn` line below must be
// flagged with witness chain shuffle_round -> raw_shuffle.
fn raw_shuffle(cluster: &mut Cluster) {
    for machine in 0..cluster.num_machines() {
        cluster.inboxes[machine].rotate_left(1);
    }
}

/// Uncharged retransmission reachable through two helpers.
pub fn resend_round(cluster: &mut Cluster) {
    cluster.charge_rounds(1);
    stage_resend(cluster);
}

// Also flagged: no charge anywhere below it, and the wire touch in
// drain_retransmit propagates up to it transitively.
fn stage_resend(cluster: &mut Cluster) {
    drain_retransmit(cluster);
}

// Also flagged: touches the retransmission buffer, no charge below it.
fn drain_retransmit(cluster: &mut Cluster) {
    cluster.pending_retransmit.truncate(0);
}
