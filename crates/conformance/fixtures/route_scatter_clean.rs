//! Clean scatter-path counterpart: the same shapes as the violation
//! fixture, but the scatter helper's wire traffic lands on a charge and
//! the hot grouping pass works on reused flat spines — the counting-sort
//! fabric as actually shipped. Must produce zero diagnostics.

/// No charge token in this body; the flow pass follows the call into the
/// helper, which accounts for the words it moves.
pub fn route_round(cluster: &mut Cluster) -> Result<(), MpcError> {
    scatter_staged(cluster);
    Ok(())
}

fn scatter_staged(cluster: &mut Cluster) {
    let mut moved = 0;
    for machine in 0..cluster.num_machines() {
        moved += cluster.inboxes[machine].len();
        cluster.inboxes[machine].rotate_left(1);
    }
    cluster.charge_words(moved);
}

// #[csmpc_hot]
pub fn group_by_destination(staged: &mut Vec<Message>, counts: &mut [u32], buf: &mut Vec<Message>) {
    // Histogram, exclusive prefix scan in place, cursor scatter: stable
    // per destination, O(len + machines), no ordered maps, no per-call
    // spine allocation.
    for c in counts.iter_mut() {
        *c = 0;
    }
    for msg in staged.iter() {
        counts[msg.to] += 1;
    }
    let mut lo = 0;
    for c in counts.iter_mut() {
        let len = *c;
        *c = lo;
        lo += len;
    }
    buf.clear();
    for msg in staged.drain(..) {
        let slot = counts[msg.to] as usize;
        counts[msg.to] += 1;
        buf.insert(slot, msg);
    }
}
