//! Clean parallel-closure counterpart: pure per-item maps, mutation
//! confined to the closure's own item and locals, and an annotated
//! thread-local-workspace call.

/// Pure map with closure-local accumulation.
pub fn sweep(mode: ParallelismMode, items: &[u64]) -> Vec<u64> {
    par_map(mode, items, |i, x| {
        let mut acc = *x;
        acc += i as u64;
        acc
    })
}

/// `par_map_mut` closures may mutate their own item (that is the point).
pub fn sweep_in_place(mode: ParallelismMode, shards: &mut [Shard]) -> Vec<usize> {
    par_map_mut(mode, shards, |id, shard| {
        shard.outbox.truncate(0);
        shard.queue.push(id);
        shard.queue.len()
    })
}

/// Thread-local workspaces are per-worker by construction; the annotation
/// records the reviewed reason.
pub fn sweep_with_workspace(mode: ParallelismMode, n: usize) -> Vec<usize> {
    par_map_range(mode, n, |v| {
        // csmpc-allow(par-closure-race): workspace is thread_local!; each worker owns its RefCell
        with_thread_workspace(|ws| ws.eval(v))
    })
}

fn with_thread_workspace<R>(f: impl FnOnce(&mut Workspace) -> R) -> R {
    WORKSPACE.with(|ws| f(&mut ws.borrow_mut()))
}
