//! Clean stability-flow counterpart: every impl that touches provenance
//! machinery states its claim explicitly, and the claimed-stable one stays
//! component-local.

fn distribute(cluster: &mut Cluster) {
    cluster.tag_machine(0, 1);
}

fn mix_all(cluster: &mut Cluster) -> u64 {
    cluster.provenance_mut().record_global_mix(3);
    0
}

/// Honest unstable algorithm: mixes components, says so.
impl MpcVertexAlgorithm for HonestUnstable {
    fn run(&self, cluster: &mut Cluster) -> Vec<bool> {
        distribute(cluster);
        let _ = mix_all(cluster);
        Vec::new()
    }

    fn component_stable(&self) -> bool {
        false
    }
}

/// Honest stable algorithm: provenance tagging via distribute only.
impl MpcVertexAlgorithm for HonestStable {
    fn run(&self, cluster: &mut Cluster) -> Vec<bool> {
        distribute(cluster);
        Vec::new()
    }

    fn component_stable(&self) -> bool {
        true
    }
}

/// Provenance-free impls owe no declaration at all.
impl MpcVertexAlgorithm for PureLocal {
    fn run(&self, _cluster: &mut Cluster) -> Vec<bool> {
        Vec::new()
    }
}
