//! Seeded violation fixture for the hot-path allocation arm of
//! [`Lint::Determinism`]: `// #[csmpc_hot]` marks a function as engine
//! hot-path code (run once per vertex per round, or tighter), where a
//! per-call ordered-map allocation defeats the reusable flat workspaces
//! (`csmpc_graph::ball::BallWorkspace`). Not compiled into any crate;
//! scanned by `tests/fixtures.rs`.

use std::collections::{BTreeMap, BTreeSet};

// #[csmpc_hot]
pub fn ball_extent(ids: &[u64]) -> usize {
    let index: BTreeMap<u64, usize> = ids.iter().map(|&x| (x, 0)).collect();
    let mut seen = BTreeSet::new();
    seen.insert(0u64);
    index.len() + seen.len()
}

// A marked function that sticks to flat scratch buffers stays clean.
// #[csmpc_hot]
pub fn flat_extent(ids: &[u64], scratch: &mut Vec<u64>) -> usize {
    scratch.clear();
    scratch.extend_from_slice(ids);
    scratch.len()
}

// Unmarked functions may build loop-invariant maps freely (cc_labels'
// by_name table is the canonical legitimate use).
pub fn grouped(ids: &[u64]) -> BTreeMap<u64, u64> {
    ids.iter().map(|&x| (x, x)).collect()
}

// #[csmpc_hot]
pub fn audited(ids: &[u64]) -> usize {
    // conformance: allow(determinism)
    let tmp = BTreeMap::from([(0u64, ids.len() as u64)]);
    tmp.len()
}
