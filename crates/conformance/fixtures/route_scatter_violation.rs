//! Seeded scatter-path violations: the two ways the counting-sort message
//! fabric can rot. An uncharged scatter helper moves inbox words one
//! private call below a charged entry point (the shape token lints
//! provably miss), and a hot-marked grouping pass rebuilds an ordered map
//! per round. Not compiled into any crate; scanned by `tests/fixtures.rs`.

/// Charges for its own round, so the token-level lints pass it; the
/// scatter helper it delegates to drives the wire with no charge on any
/// path.
pub fn route_round(cluster: &mut Cluster) -> Result<(), MpcError> {
    cluster.charge_rounds(1);
    scatter_staged(cluster);
    Ok(())
}

// Flagged: regroups staged messages into per-machine inboxes — wire
// traffic — without a charge anywhere below it. The diagnostic must carry
// the witness chain route_round -> scatter_staged.
fn scatter_staged(cluster: &mut Cluster) {
    for machine in 0..cluster.num_machines() {
        cluster.inboxes[machine].rotate_left(1);
    }
}

// #[csmpc_hot]
pub fn group_by_destination(staged: &[Message]) -> BTreeMap<usize, Vec<Message>> {
    // Flagged by the determinism lint's hot-path arm: a per-round
    // grouping pass allocating an ordered map per call is exactly the
    // churn the flat histogram/cursor spines removed.
    let mut groups: BTreeMap<usize, Vec<Message>> = BTreeMap::new();
    for msg in staged {
        groups.entry(msg.to).or_default().push(msg.clone());
    }
    groups
}
