//! Seeded parallel-closure races: every closure below breaks the
//! seq-vs-par bit-identity contract a different way.

/// Interior mutability captured by the closure (the `borrow_mut` line).
pub fn racy_log(mode: ParallelismMode, n: usize, log: &RefCell<Vec<usize>>) -> Vec<usize> {
    par_map_range(mode, n, |v| {
        log.borrow_mut().push(v);
        v
    })
}

/// Captured-state mutation: push into a captured Vec and a compound
/// assignment to a captured counter — two distinct findings.
pub fn racy_accumulate(mode: ParallelismMode, items: &[u64]) -> Vec<u64> {
    let mut seen = Vec::new();
    let mut total = 0u64;
    let out = par_map(mode, items, |i, x| {
        seen.push(i);
        total += *x;
        *x
    });
    let _ = (seen, total);
    out
}

/// Unordered iteration inside the per-item computation.
pub fn racy_histogram(mode: ParallelismMode, n: usize) -> Vec<usize> {
    par_map_range(mode, n, |v| {
        let m: HashMap<usize, usize> = neighbor_counts(v);
        m.values().sum()
    })
}
