//! Seeded journal-replay violations: `recover` and `replay_journal`
//! are private crash-recovery roots — before the entry-name extension
//! the flow pass never rooted a search there, so an uncharged wire
//! rebuild below the replay layer went unseen.

// Flagged (charge-flow, and recovery-accounting by name): the recovery
// root re-stages wire state through a helper with no charge anywhere.
fn recover(cluster: &mut Cluster) -> Result<(), MpcError> {
    rebuild_inflight(cluster);
    Ok(())
}

// Also flagged by charge-flow: the direct wire touch, witnessed from
// `recover`.
fn rebuild_inflight(cluster: &mut Cluster) {
    for machine in 0..cluster.num_machines() {
        cluster.inboxes[machine].clear();
    }
}

// Flagged: replays the retransmission buffer two calls down without
// ever charging the frames it re-reads.
fn replay_journal(cluster: &mut Cluster) -> Result<(), MpcError> {
    requeue_torn_tail(cluster);
    Ok(())
}

// Also flagged: transitively wire-touching, still uncharged below.
fn requeue_torn_tail(cluster: &mut Cluster) {
    restage_frame(cluster);
}

// Also flagged: the retransmission buffer is wire state.
fn restage_frame(cluster: &mut Cluster) {
    cluster.pending_retransmit.push(0);
}
