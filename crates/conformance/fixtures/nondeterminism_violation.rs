//! Fixture: seeded `nondeterminism` violations. Not compiled — scanned by
//! the analyzer's tests, which assert the exact lines flagged below.

use std::collections::HashMap; // line 4: violation (HashMap)
use std::time::Instant; // line 5: violation (Instant)

pub fn slow_count(xs: &[u64]) -> usize {
    let start = Instant::now(); // line 8: violation (Instant)
    let mut seen = HashMap::new(); // line 9: violation (HashMap)
    for &x in xs {
        seen.insert(x, ());
    }
    let _elapsed = start.elapsed();
    seen.len()
}

// A string literal and a comment mentioning HashMap must NOT be flagged.
pub fn innocuous() -> &'static str {
    "HashMap and Instant in a string are fine"
}

// conformance: allow(nondeterminism)
pub fn suppressed() -> std::collections::HashSet<u64> {
    Default::default()
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet; // test code is exempt

    #[test]
    fn scaffolding_may_hash() {
        let _ = HashSet::<u8>::new();
    }
}
