//! Fixture: seeded `unaccounted-primitive` violations. Not compiled —
//! scanned by the analyzer's tests, which assert the exact lines below.

pub struct FixtureGraph {
    n: usize,
    degs: Vec<usize>,
}

impl FixtureGraph {
    /// Accounted: charges the ledger. Must NOT be flagged.
    pub fn count_nodes(&self, cluster: &mut Cluster) -> usize {
        cluster.charge_rounds(1);
        self.n
    }

    /// Unaccounted: drives the cluster but never charges. Line 17: violation.
    pub fn leak_degree_sum(&self, cluster: &mut Cluster) -> usize {
        let _ = cluster.num_machines();
        self.degs.iter().sum()
    }

    /// A multi-line signature must be handled too. Line 23: violation.
    pub fn leak_labels<T: Clone>(
        &self,
        cluster: &mut Cluster,
        labels: &[T],
    ) -> Vec<T> {
        let _ = cluster.num_machines();
        labels.to_vec()
    }

    /// No cluster involved — out of scope for the lint.
    pub fn degree(&self, v: usize) -> usize {
        self.degs[v]
    }

    // conformance: allow(unaccounted-primitive)
    pub fn suppressed_probe(&self, cluster: &mut Cluster) -> usize {
        let _ = cluster.num_machines();
        self.n
    }
}
