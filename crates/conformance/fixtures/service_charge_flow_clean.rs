//! Clean service-layer scheduler helpers: every wire-adjacent path out
//! of the service entry points (`run_job`, `execute_attempt` — private,
//! found only through the extended entry-name list) reaches a `Stats`
//! charge, so the charge-flow pass stays silent.

// The per-attempt runner delegates the retransmission sweep; the helper
// charges the recovery words it re-ships, so the whole chain accounts.
fn execute_attempt(cluster: &mut Cluster) -> Result<(), MpcError> {
    flush_retries(cluster);
    Ok(())
}

// Touches the retransmission buffer and charges for it — clean.
fn flush_retries(cluster: &mut Cluster) {
    cluster.charge_recovery(0, cluster.pending_retransmit.len());
    cluster.pending_retransmit.truncate(0);
}

// The workload dispatcher delegates the charge one level down: the flow
// pass follows the call where a token lint could not.
fn run_job(cluster: &mut Cluster) -> Result<(), MpcError> {
    charged_drain(cluster);
    Ok(())
}

fn charged_drain(cluster: &mut Cluster) {
    cluster.charge_words(1, 4);
    for machine in 0..cluster.num_machines() {
        cluster.inboxes[machine].clear();
    }
}

// Communication-free bookkeeping: mutates the cluster but never touches
// the wire, so it owes no charge.
fn note_attempt(cluster: &mut Cluster) {
    cluster.attempt_count += 1;
}
