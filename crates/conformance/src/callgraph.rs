//! Workspace call graph over the parsed [`crate::syntax::FileModel`]s.
//!
//! Resolution is name-based and deliberately conservative: a call site
//! named `f` gets an edge to *every* workspace function named `f` (there
//! is no type information), except that a deny-list of ubiquitous method
//! names (`run`, `clone`, `len`, ...) produces no edges at all — linking
//! every `.run(...)` to every `run` implementation would drown the passes
//! in false reachability. Calls with a literal `self.` receiver resolve
//! within the same impl type first when a same-named method exists there.
//!
//! The resulting imprecision is one-sided per pass and documented in
//! DESIGN §6: properties computed as "does any resolution reach X" may
//! over-approximate, while deny-listed edges are a known false-negative
//! class.

use crate::syntax::FileModel;
use std::collections::BTreeMap;

/// Ubiquitous method names that never produce call-graph edges.
const EDGE_DENY_LIST: &[&str] = &[
    "run",
    "name",
    "deterministic",
    "component_stable",
    "new",
    "clone",
    "default",
    "fmt",
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    "hash",
    "from",
    "into",
    "as_ref",
    "as_mut",
    "len",
    "is_empty",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "get",
    "expect",
    "unwrap",
    "unwrap_or",
    "unwrap_or_else",
    "map",
    "map_err",
    "and_then",
    "ok_or",
    "collect",
    "push",
    "insert",
    "extend",
    "contains",
    "to_string",
    "to_vec",
    "with",
    "drop",
];

/// `true` when `name` is too ubiquitous for name-based resolution — the
/// graph builds no edges for it, and interprocedural lookups elsewhere
/// (e.g. the race pass's one-level interior-mutability check) must skip
/// it for the same reason: `new` alone says nothing about *which* `new`.
#[must_use]
pub fn is_ubiquitous(name: &str) -> bool {
    EDGE_DENY_LIST.contains(&name)
}

/// A function's identity in the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct FnId {
    /// Index of the owning file in the workspace model list.
    pub file: usize,
    /// Index into that file's `fns`.
    pub item: usize,
}

/// The workspace call graph.
#[derive(Debug)]
pub struct CallGraph {
    /// Node list (parallel to `edges`).
    pub nodes: Vec<FnId>,
    /// Adjacency: `edges[i]` are node indices `nodes[i]` calls into.
    pub edges: Vec<Vec<usize>>,
    /// Name → node indices defining a function of that name.
    pub by_name: BTreeMap<String, Vec<usize>>,
    node_of: BTreeMap<FnId, usize>,
}

impl CallGraph {
    /// Builds the graph over all files. Test functions are included as
    /// nodes (so witnesses can pass through them) but passes typically
    /// filter findings to non-test code.
    #[must_use]
    pub fn build(files: &[FileModel]) -> CallGraph {
        let mut nodes = Vec::new();
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut node_of = BTreeMap::new();
        for (fi, fm) in files.iter().enumerate() {
            for (ii, f) in fm.fns.iter().enumerate() {
                let id = FnId { file: fi, item: ii };
                let n = nodes.len();
                nodes.push(id);
                node_of.insert(id, n);
                by_name.entry(f.name.clone()).or_default().push(n);
            }
        }
        let mut edges = vec![Vec::new(); nodes.len()];
        for (n, &id) in nodes.iter().enumerate() {
            let fm = &files[id.file];
            let f = &fm.fns[id.item];
            for call in &f.calls {
                if EDGE_DENY_LIST.contains(&call.callee.as_str()) {
                    continue;
                }
                let Some(cands) = by_name.get(&call.callee) else {
                    continue;
                };
                // `self.f(...)`: prefer methods of the same impl type.
                let same_type: Vec<usize> = if call.self_receiver {
                    let own_type = f
                        .impl_idx
                        .map(|ix| fm.impls[ix].type_name.as_str())
                        .unwrap_or("");
                    cands
                        .iter()
                        .copied()
                        .filter(|&c| {
                            let cid = nodes[c];
                            let cfm = &files[cid.file];
                            cfm.fns[cid.item]
                                .impl_idx
                                .map(|ix| cfm.impls[ix].type_name.as_str())
                                == Some(own_type)
                        })
                        .collect()
                } else {
                    Vec::new()
                };
                let targets = if same_type.is_empty() {
                    cands
                } else {
                    &same_type
                };
                for &t in targets {
                    if t != n && !edges[n].contains(&t) {
                        edges[n].push(t);
                    }
                }
            }
        }
        CallGraph {
            nodes,
            edges,
            by_name,
            node_of,
        }
    }

    /// Node index of a function id.
    #[must_use]
    pub fn node(&self, id: FnId) -> Option<usize> {
        self.node_of.get(&id).copied()
    }

    /// Downward fixpoint: `out[n]` is true when `direct[n]` holds or any
    /// transitive callee of `n` satisfies `direct`.
    #[must_use]
    pub fn transitive_down(&self, direct: &[bool]) -> Vec<bool> {
        assert_eq!(direct.len(), self.nodes.len());
        let mut out = direct.to_vec();
        // Reverse-propagate to callers until fixpoint (graphs are small —
        // a few thousand nodes — so the simple iteration is fine).
        let mut changed = true;
        while changed {
            changed = false;
            for n in 0..self.nodes.len() {
                if out[n] {
                    continue;
                }
                if self.edges[n].iter().any(|&c| out[c]) {
                    out[n] = true;
                    changed = true;
                }
            }
        }
        out
    }

    /// Forward reachability from a seed set (seeds included).
    #[must_use]
    pub fn reachable_from(&self, seeds: &[usize]) -> Vec<bool> {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack: Vec<usize> = seeds.to_vec();
        for &s in seeds {
            seen[s] = true;
        }
        while let Some(n) = stack.pop() {
            for &c in &self.edges[n] {
                if !seen[c] {
                    seen[c] = true;
                    stack.push(c);
                }
            }
        }
        seen
    }

    /// Shortest call chain from `from` to any node satisfying `target`,
    /// as node indices (`from` first). `None` when unreachable.
    #[must_use]
    pub fn witness_chain(&self, from: usize, target: &[bool]) -> Option<Vec<usize>> {
        assert_eq!(target.len(), self.nodes.len());
        let mut prev = vec![usize::MAX; self.nodes.len()];
        let mut queue = std::collections::VecDeque::new();
        let mut seen = vec![false; self.nodes.len()];
        queue.push_back(from);
        seen[from] = true;
        while let Some(n) = queue.pop_front() {
            if target[n] {
                let mut chain = vec![n];
                let mut cur = n;
                while prev[cur] != usize::MAX {
                    cur = prev[cur];
                    chain.push(cur);
                }
                chain.reverse();
                return Some(chain);
            }
            for &c in &self.edges[n] {
                if !seen[c] {
                    seen[c] = true;
                    prev[c] = n;
                    queue.push_back(c);
                }
            }
        }
        None
    }

    /// Shortest chain from any seed to `to` (for entry-point witnesses).
    #[must_use]
    pub fn chain_from_seeds(&self, seeds: &[usize], to: usize) -> Option<Vec<usize>> {
        let mut target = vec![false; self.nodes.len()];
        target[to] = true;
        seeds
            .iter()
            .filter_map(|&s| self.witness_chain(s, &target))
            .min_by_key(Vec::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::parse_file;
    use std::path::Path;

    fn graph(src: &str) -> (Vec<FileModel>, CallGraph) {
        let files = vec![parse_file(Path::new("x.rs").to_path_buf(), src)];
        let g = CallGraph::build(&files);
        (files, g)
    }

    #[test]
    fn edges_follow_names() {
        let (files, g) = graph("fn a() { b(); }\nfn b() { c(); }\nfn c() {}\n");
        let names: Vec<&str> = g
            .nodes
            .iter()
            .map(|id| files[id.file].fns[id.item].name.as_str())
            .collect();
        assert_eq!(names, vec!["a", "b", "c"]);
        assert_eq!(g.edges[0], vec![1]);
        assert_eq!(g.edges[1], vec![2]);
        let direct = vec![false, false, true];
        let closed = g.transitive_down(&direct);
        assert_eq!(closed, vec![true, true, true]);
    }

    #[test]
    fn deny_listed_names_make_no_edges() {
        let (_, g) = graph("fn a() { x.run(); }\nfn run() { charge(); }\nfn charge() {}\n");
        assert!(g.edges[0].is_empty(), "{:?}", g.edges);
    }

    #[test]
    fn self_calls_prefer_same_impl_type() {
        let src = "\
impl A {
    fn go(&self) { self.step(); }
    fn step(&self) {}
}
impl B {
    fn step(&self) { forbidden(); }
}
fn forbidden() {}
";
        let (files, g) = graph(src);
        let go = g
            .nodes
            .iter()
            .position(|id| files[id.file].fns[id.item].name == "go")
            .unwrap();
        // go's only edge is A::step (node index 1), not B::step.
        assert_eq!(g.edges[go], vec![1]);
    }

    #[test]
    fn witness_chains_are_shortest() {
        let (files, g) =
            graph("fn a() { b(); c(); }\nfn b() { c(); }\nfn c() { sink(); }\nfn sink() {}\n");
        let sink = g
            .nodes
            .iter()
            .position(|id| files[id.file].fns[id.item].name == "sink")
            .unwrap();
        let mut target = vec![false; g.nodes.len()];
        target[sink] = true;
        let chain = g.witness_chain(0, &target).unwrap();
        assert_eq!(chain.len(), 3, "a -> c -> sink");
        let reach = g.reachable_from(&[0]);
        assert!(reach.iter().all(|&r| r));
    }
}
