//! Interprocedural component-stability discipline (`stability-flow` lint).
//!
//! Definition 13 (component stability) is a *promise about information
//! flow*: a component-stable algorithm's per-vertex outputs may depend
//! only on the vertex's own connected component. The engine tracks the
//! actual flow at runtime through the provenance ledger
//! (`crates/mpc/src/provenance.rs`), and every algorithm advertises its
//! promise through `MpcVertexAlgorithm::component_stable()` — which has a
//! conservative `false` default in `api.rs`.
//!
//! That default is exactly the hazard this pass exists for: an algorithm
//! that manipulates provenance state while silently inheriting the
//! default is making an *implicit* stability claim nobody reviewed. The
//! rule, over the workspace call graph:
//!
//! 1. **Missing declaration** (warning): an `impl MpcVertexAlgorithm for
//!    T` that transitively reaches provenance machinery (`tag_machine`,
//!    `provenance`, `provenance_mut`, `machine_components`) must declare
//!    `component_stable()` explicitly — stating `true` or `false` in the
//!    impl, not inheriting the default.
//! 2. **Stable impl mixes components** (error): an impl whose
//!    `component_stable()` body returns `true` must not transitively
//!    reach a cross-component mixing write (`record_global_mix`,
//!    `provenance_mut`) — a global aggregate inside a claimed-stable
//!    algorithm contradicts Definition 13 and invalidates the
//!    Theorem 1.1/1.2 transfer argument.
//!
//! Both findings carry a call-chain witness from the impl down to the
//! provenance touch.

use crate::callgraph::CallGraph;
use crate::lex::TokKind;
use crate::syntax::FileModel;
use crate::{Diagnostic, Lint, Severity};

/// Provenance machinery: touching any of these means the function reads
/// or writes component provenance tags.
const PROV_MARKERS: &[&str] = &[
    "tag_machine",
    "provenance",
    "provenance_mut",
    "machine_components",
];

/// Cross-component mixing writes: a claimed-stable algorithm must never
/// reach these.
const MIX_MARKERS: &[&str] = &["record_global_mix", "provenance_mut"];

/// The vertex-algorithm trait whose impls this pass audits.
const TRAIT_NAME: &str = "MpcVertexAlgorithm";

/// Runs the pass over the parsed workspace.
#[must_use]
pub fn run(files: &[FileModel], graph: &CallGraph) -> Vec<Diagnostic> {
    let n = graph.nodes.len();
    let mut direct_prov = vec![false; n];
    let mut direct_mix = vec![false; n];
    for node in 0..n {
        let id = graph.nodes[node];
        let f = &files[id.file].fns[id.item];
        direct_prov[node] = f
            .calls
            .iter()
            .any(|c| PROV_MARKERS.contains(&c.callee.as_str()));
        direct_mix[node] = f
            .calls
            .iter()
            .any(|c| MIX_MARKERS.contains(&c.callee.as_str()));
    }
    let prov = graph.transitive_down(&direct_prov);
    let mix = graph.transitive_down(&direct_mix);

    let name_of = |m: usize| {
        let id = graph.nodes[m];
        files[id.file].fns[id.item].name.clone()
    };

    let mut out = Vec::new();
    for (fi, fm) in files.iter().enumerate() {
        for (ix, imp) in fm.impls.iter().enumerate() {
            if imp.trait_name.as_deref() != Some(TRAIT_NAME) {
                continue;
            }
            // The impl's functions (graph seeds) and its explicit
            // `component_stable` declaration, if any.
            let mut seeds = Vec::new();
            let mut declares = false;
            let mut declares_true = false;
            let mut any_nontest = false;
            for (ii, f) in fm.fns.iter().enumerate() {
                if f.impl_idx != Some(ix) {
                    continue;
                }
                any_nontest |= !f.in_test;
                if let Some(node) = graph.node(crate::callgraph::FnId { file: fi, item: ii }) {
                    seeds.push(node);
                }
                if f.name == "component_stable" {
                    declares = true;
                    if let Some((a, b)) = f.body {
                        declares_true = fm.toks[a..=b.min(fm.toks.len() - 1)]
                            .iter()
                            .any(|t| t.kind == TokKind::Ident && t.text == "true");
                    }
                }
            }
            if !any_nontest {
                continue;
            }
            let best_chain = |direct: &[bool]| -> Option<Vec<String>> {
                seeds
                    .iter()
                    .filter_map(|&s| graph.witness_chain(s, direct))
                    .min_by_key(Vec::len)
                    .map(|chain| chain.iter().map(|&m| name_of(m)).collect())
            };
            let reaches_prov = seeds.iter().any(|&s| prov[s]);
            let reaches_mix = seeds.iter().any(|&s| mix[s]);
            if reaches_prov && !declares {
                let witness = best_chain(&direct_prov).unwrap_or_default();
                out.push(Diagnostic {
                    lint: Lint::StabilityFlow,
                    severity: Severity::Warning,
                    file: fm.path.clone(),
                    line: imp.line,
                    message: format!(
                        "`impl MpcVertexAlgorithm for {}` reaches component-provenance \
                         machinery (via `{}`) but inherits the default component_stable(); \
                         declare component_stable() explicitly so the stability claim is \
                         reviewed, not implied",
                        imp.type_name,
                        witness.last().cloned().unwrap_or_default(),
                    ),
                    witness,
                });
            }
            if declares_true && reaches_mix {
                let witness = best_chain(&direct_mix).unwrap_or_default();
                out.push(Diagnostic {
                    lint: Lint::StabilityFlow,
                    severity: Severity::Error,
                    file: fm.path.clone(),
                    line: imp.line,
                    message: format!(
                        "`impl MpcVertexAlgorithm for {}` declares component_stable() = true \
                         but transitively reaches a cross-component mix (`{}`); a global \
                         aggregate inside a claimed-stable algorithm contradicts \
                         Definition 13",
                        imp.type_name,
                        witness.last().cloned().unwrap_or_default(),
                    ),
                    witness,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::parse_file;
    use std::path::Path;

    fn run_src(src: &str) -> Vec<Diagnostic> {
        let files = vec![parse_file(Path::new("x.rs").to_path_buf(), src)];
        let graph = CallGraph::build(&files);
        run(&files, &graph)
    }

    #[test]
    fn missing_declaration_is_flagged() {
        let src = "\
fn distribute(cluster: &mut Cluster) {
    cluster.tag_machine(0, 1);
}
impl MpcVertexAlgorithm for Silent {
    fn run(&self, cluster: &mut Cluster) {
        distribute(cluster);
    }
}
";
        let d = run_src(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].lint, Lint::StabilityFlow);
        assert_eq!(d[0].severity, Severity::Warning);
        assert!(d[0].message.contains("Silent"));
        assert_eq!(d[0].witness, vec!["run", "distribute"]);
    }

    #[test]
    fn explicit_false_declaration_is_clean() {
        let src = "\
fn mix_all(cluster: &mut Cluster) {
    cluster.provenance_mut().record_global_mix(0);
}
impl MpcVertexAlgorithm for Honest {
    fn run(&self, cluster: &mut Cluster) {
        mix_all(cluster);
    }
    fn component_stable(&self) -> bool {
        false
    }
}
";
        assert!(run_src(src).is_empty(), "{:?}", run_src(src));
    }

    #[test]
    fn stable_impl_reaching_mix_is_an_error() {
        let src = "\
fn helper(cluster: &mut Cluster) {
    aggregate_all(cluster);
}
fn aggregate_all(cluster: &mut Cluster) {
    cluster.provenance_mut().record_global_mix(7);
}
impl MpcVertexAlgorithm for Liar {
    fn run(&self, cluster: &mut Cluster) {
        helper(cluster);
    }
    fn component_stable(&self) -> bool {
        true
    }
}
";
        let d = run_src(src);
        // Missing-declaration does not fire (declared); the mix does.
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].severity, Severity::Error);
        assert!(d[0].message.contains("Liar"));
        assert_eq!(d[0].witness, vec!["run", "helper", "aggregate_all"]);
    }

    #[test]
    fn stable_impl_with_component_local_work_is_clean() {
        let src = "\
fn distribute(cluster: &mut Cluster) {
    cluster.tag_machine(0, 1);
}
impl MpcVertexAlgorithm for Careful {
    fn run(&self, cluster: &mut Cluster) {
        distribute(cluster);
    }
    fn component_stable(&self) -> bool {
        true
    }
}
";
        assert!(run_src(src).is_empty(), "{:?}", run_src(src));
    }

    #[test]
    fn non_trait_impls_are_ignored() {
        let src = "\
impl Toolbox {
    fn poke(&self, cluster: &mut Cluster) {
        cluster.tag_machine(0, 1);
    }
}
";
        assert!(run_src(src).is_empty());
    }
}
