//! A minimal, dependency-free Rust lexer for the syntax-aware analysis
//! engine.
//!
//! Produces a flat token stream (identifiers, punctuation, literals) with
//! 1-indexed line numbers, plus a per-line comment table (comment text is
//! where suppressions live). String/char-literal *contents* are dropped so
//! the passes never match tokens inside literals; raw strings of any hash
//! depth and nested block comments are handled.
//!
//! The lexer is deliberately smaller than a real Rust lexer: it does not
//! classify keywords (passes match identifier text directly), does not
//! interpret numeric suffixes, and folds every multi-character operator it
//! knows into a single punctuation token so the parser can match `==` vs
//! `=` or `||` vs `|` without look-ahead.

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `Cluster`, `par_map`, ...).
    Ident,
    /// Punctuation / operator (`{`, `::`, `+=`, ...), text holds the exact
    /// operator.
    Punct,
    /// Literal (string, char, number); contents are not preserved for
    /// strings/chars.
    Lit,
    /// A lifetime (`'a`, `'static`) — kept distinct so char literals and
    /// lifetimes never confuse the parser.
    Lifetime,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token kind.
    pub kind: TokKind,
    /// Exact source text for identifiers and punctuation; `""` for string
    /// and char literals, the raw digits for numbers.
    pub text: String,
    /// 1-indexed source line the token starts on.
    pub line: usize,
}

impl Tok {
    /// `true` when the token is the identifier `s`.
    #[must_use]
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// `true` when the token is the punctuation `s`.
    #[must_use]
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// Lexer output: the token stream plus per-line comment text.
#[derive(Debug, Clone, Default)]
pub struct Lexed {
    /// All tokens in source order.
    pub toks: Vec<Tok>,
    /// Comment text concatenated per line (index 0 = line 1).
    pub comments: Vec<String>,
}

/// Multi-character operators, longest first (greedy matching).
const MULTI_OPS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=",
    "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>", "..",
];

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Lexes `source` into tokens and a per-line comment table.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn lex(source: &str) -> Lexed {
    let chars: Vec<char> = source.chars().collect();
    let line_count = source.lines().count().max(1) + 1;
    let mut out = Lexed {
        toks: Vec::new(),
        comments: vec![String::new(); line_count],
    };
    let mut line = 1usize;
    let mut i = 0usize;
    let n = chars.len();
    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        let next = chars.get(i + 1).copied();
        // Comments (kept in the side table for suppression parsing).
        if c == '/' && next == Some('/') {
            let mut j = i;
            while j < n && chars[j] != '\n' {
                j += 1;
            }
            let text: String = chars[i..j].iter().collect();
            if let Some(slot) = out.comments.get_mut(line - 1) {
                slot.push_str(&text);
            }
            i = j;
            continue;
        }
        if c == '/' && next == Some('*') {
            let mut depth = 1u32;
            let mut j = i + 2;
            while j < n && depth > 0 {
                if chars[j] == '\n' {
                    line += 1;
                    j += 1;
                } else if chars[j] == '/' && chars.get(j + 1) == Some(&'*') {
                    depth += 1;
                    j += 2;
                } else if chars[j] == '*' && chars.get(j + 1) == Some(&'/') {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            i = j;
            continue;
        }
        // Raw strings: r"..." / r#"..."# (any hash depth), also br"...".
        if (c == 'r' || (c == 'b' && next == Some('r'))) && {
            let start = if c == 'b' { i + 2 } else { i + 1 };
            let mut j = start;
            while chars.get(j) == Some(&'#') {
                j += 1;
            }
            chars.get(j) == Some(&'"') && (i == 0 || !is_ident_char(chars[i - 1]))
        } {
            let start = if c == 'b' { i + 2 } else { i + 1 };
            let mut hashes = 0usize;
            let mut j = start;
            while chars.get(j) == Some(&'#') {
                hashes += 1;
                j += 1;
            }
            j += 1; // opening quote
            loop {
                match chars.get(j) {
                    None => break,
                    Some('\n') => {
                        line += 1;
                        j += 1;
                    }
                    Some('"') => {
                        let closed = (1..=hashes).all(|k| chars.get(j + k) == Some(&'#'));
                        if closed {
                            j += 1 + hashes;
                            break;
                        }
                        j += 1;
                    }
                    Some(_) => j += 1,
                }
            }
            out.toks.push(Tok {
                kind: TokKind::Lit,
                text: String::new(),
                line,
            });
            i = j;
            continue;
        }
        // Ordinary strings (and byte strings).
        if c == '"' || (c == 'b' && next == Some('"')) {
            let mut j = if c == 'b' { i + 2 } else { i + 1 };
            while j < n {
                match chars[j] {
                    '\\' => j += 2,
                    '\n' => {
                        line += 1;
                        j += 1;
                    }
                    '"' => {
                        j += 1;
                        break;
                    }
                    _ => j += 1,
                }
            }
            out.toks.push(Tok {
                kind: TokKind::Lit,
                text: String::new(),
                line,
            });
            i = j;
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let is_char_lit = next == Some('\\')
                || (next.is_some_and(|nc| nc != '\'') && chars.get(i + 2) == Some(&'\''));
            if is_char_lit {
                let mut j = i + 1;
                while j < n {
                    match chars[j] {
                        '\\' => j += 2,
                        '\'' => {
                            j += 1;
                            break;
                        }
                        _ => j += 1,
                    }
                }
                out.toks.push(Tok {
                    kind: TokKind::Lit,
                    text: String::new(),
                    line,
                });
                i = j;
            } else {
                // Lifetime: 'ident
                let mut j = i + 1;
                while j < n && is_ident_char(chars[j]) {
                    j += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text: chars[i..j].iter().collect(),
                    line,
                });
                i = j;
            }
            continue;
        }
        // Identifiers / keywords.
        if is_ident_start(c) {
            let mut j = i + 1;
            while j < n && is_ident_char(chars[j]) {
                j += 1;
            }
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text: chars[i..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }
        // Numbers (digits plus embedded idents/underscores/dots for floats
        // and suffixes — precision is irrelevant to the passes).
        if c.is_ascii_digit() {
            let mut j = i + 1;
            while j < n
                && (is_ident_char(chars[j])
                    || (chars[j] == '.'
                        && chars
                            .get(j + 1)
                            .copied()
                            .is_some_and(|d| d.is_ascii_digit())))
            {
                j += 1;
            }
            out.toks.push(Tok {
                kind: TokKind::Lit,
                text: chars[i..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }
        // Multi-char operators, greedy.
        let mut matched = false;
        for op in MULTI_OPS {
            let len = op.len();
            if i + len <= n && chars[i..i + len].iter().collect::<String>() == *op {
                out.toks.push(Tok {
                    kind: TokKind::Punct,
                    text: (*op).to_string(),
                    line,
                });
                i += len;
                matched = true;
                break;
            }
        }
        if matched {
            continue;
        }
        out.toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(lexed: &Lexed) -> Vec<&str> {
        lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect()
    }

    #[test]
    fn basic_tokens_and_lines() {
        let l = lex("fn foo() {\n    bar(1);\n}\n");
        assert_eq!(idents(&l), vec!["fn", "foo", "bar"]);
        let bar = l.toks.iter().find(|t| t.is_ident("bar")).unwrap();
        assert_eq!(bar.line, 2);
    }

    #[test]
    fn strings_and_comments_are_not_code() {
        let l = lex("let x = \"HashMap::new()\"; // trailing HashMap\n/* block\nRefCell */ let y;");
        assert!(!idents(&l).contains(&"HashMap"));
        assert!(!idents(&l).contains(&"RefCell"));
        assert!(l.comments[0].contains("trailing HashMap"));
        assert!(idents(&l).contains(&"y"));
    }

    #[test]
    fn raw_strings_any_depth() {
        let l = lex("let p = r#\"par_iter\"#; let q = r\"x\"; done();");
        assert!(!idents(&l).contains(&"par_iter"));
        assert!(idents(&l).contains(&"done"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        assert!(l
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "'a"));
        // Char literals become anonymous literals, not lifetimes.
        assert_eq!(
            l.toks
                .iter()
                .filter(|t| t.kind == TokKind::Lifetime)
                .count(),
            2 // both 'a occurrences
        );
    }

    #[test]
    fn multi_char_operators_fold() {
        let l = lex("a == b; c += 1; d => e; f || g; h | i; j -> k;");
        let ops: Vec<&str> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Punct)
            .map(|t| t.text.as_str())
            .collect();
        assert!(ops.contains(&"=="));
        assert!(ops.contains(&"+="));
        assert!(ops.contains(&"=>"));
        assert!(ops.contains(&"||"));
        assert!(ops.contains(&"|"));
        assert!(ops.contains(&"->"));
        assert!(!ops.contains(&"="));
    }

    #[test]
    fn path_separator_is_one_token() {
        let l = lex("std::collections::BTreeMap::new()");
        assert_eq!(l.toks.iter().filter(|t| t.is_punct("::")).count(), 3);
    }
}
