//! Item-level parsing on top of [`crate::lex`]: functions, impl blocks,
//! call expressions, and closure arguments.
//!
//! This is not a full Rust parser — it recovers exactly the structure the
//! interprocedural passes need:
//!
//! * every `fn` item with its name, flattened signature, parameter names,
//!   body token span, and enclosing `impl` context;
//! * every `impl` block with its self-type and (optional) trait name;
//! * per-function call lists (identifier-followed-by-`(` occurrences,
//!   macros and control-flow keywords excluded);
//! * `#[cfg(test)]` regions (token-granular), so test scaffolding is
//!   exempt from the production-code passes.
//!
//! Known approximations (documented in DESIGN §6 as false-negative
//! classes): nested `fn` items contribute their calls to the enclosing
//! function's span; calls through function pointers, trait objects, and
//! ubiquitous method names carry no call-graph edges.

use crate::lex::{lex, Lexed, Tok, TokKind};
use std::path::PathBuf;

/// An `impl` block.
#[derive(Debug, Clone)]
pub struct ImplItem {
    /// The self type's last path segment (`Cluster`,
    /// `DistributedGraph`, ...).
    pub type_name: String,
    /// The implemented trait's last path segment, when this is a trait
    /// impl (`impl Trait for Type`).
    pub trait_name: Option<String>,
    /// 1-indexed line of the `impl` keyword.
    pub line: usize,
    /// Token span `[open, close]` of the impl body's braces.
    pub body: (usize, usize),
}

/// One recorded call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name (last path segment / method name).
    pub callee: String,
    /// 1-indexed line of the call.
    pub line: usize,
    /// `true` when the receiver is literally `self` (`self.f(...)`).
    pub self_receiver: bool,
}

/// A `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// 1-indexed line of the `fn` keyword.
    pub line: usize,
    /// `true` when a `pub` modifier precedes the declaration.
    pub is_pub: bool,
    /// Flattened signature text (whitespace-separated tokens from `fn` to
    /// the body brace / semicolon), e.g.
    /// `fn f ( & mut self , cluster : & mut Cluster ) -> usize`.
    pub sig: String,
    /// Parameter identifiers (pattern idents; `self` included verbatim).
    pub params: Vec<String>,
    /// Token span `[open, close]` of the body braces; `None` for bodyless
    /// trait-method declarations.
    pub body: Option<(usize, usize)>,
    /// Index into [`FileModel::impls`] of the innermost enclosing impl.
    pub impl_idx: Option<usize>,
    /// `true` when the item sits inside a `#[cfg(test)]` region.
    pub in_test: bool,
    /// All call sites in the body span.
    pub calls: Vec<CallSite>,
}

/// A parsed source file.
#[derive(Debug, Clone)]
pub struct FileModel {
    /// Workspace-relative path (used in diagnostics).
    pub path: PathBuf,
    /// Token stream.
    pub toks: Vec<Tok>,
    /// Per-line comment text (index 0 = line 1).
    pub comments: Vec<String>,
    /// Per-token `#[cfg(test)]` membership.
    pub test_mask: Vec<bool>,
    /// All impl blocks.
    pub impls: Vec<ImplItem>,
    /// All fn items.
    pub fns: Vec<FnItem>,
}

/// Control-flow / binding keywords that look like calls when followed by
/// `(` but are not.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "match", "while", "for", "loop", "return", "fn", "move", "unsafe", "let", "else", "in",
    "as", "where", "impl", "pub", "use", "mod", "const", "static", "ref", "mut", "box", "Some",
    "Ok", "Err", "None",
];

/// Builds the matching-brace map: `brace_match[i] = Some(j)` when token `i`
/// is `{` closing at token `j` (and vice versa). Also works for `(` / `)`
/// and `[` / `]` via the `open`/`close` arguments.
fn delim_match(toks: &[Tok], open: &str, close: &str) -> Vec<Option<usize>> {
    let mut map = vec![None; toks.len()];
    let mut stack = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.is_punct(open) {
            stack.push(i);
        } else if t.is_punct(close) {
            if let Some(j) = stack.pop() {
                map[j] = Some(i);
                map[i] = Some(j);
            }
        }
    }
    map
}

/// Marks tokens covered by `#[cfg(test)]` items.
fn test_mask(toks: &[Tok], braces: &[Option<usize>]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        // Match the exact attribute token sequence `# [ cfg ( test ) ]`.
        let is_cfg_test = toks[i].is_punct("#")
            && toks.get(i + 1).is_some_and(|t| t.is_punct("["))
            && toks.get(i + 2).is_some_and(|t| t.is_ident("cfg"))
            && toks.get(i + 3).is_some_and(|t| t.is_punct("("))
            && toks.get(i + 4).is_some_and(|t| t.is_ident("test"))
            && toks.get(i + 5).is_some_and(|t| t.is_punct(")"))
            && toks.get(i + 6).is_some_and(|t| t.is_punct("]"));
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // The attribute governs the next item: everything up to the end of
        // that item's block (or its terminating `;` for block-free items).
        let mut j = i + 7;
        let mut end = toks.len().saturating_sub(1);
        while j < toks.len() {
            if toks[j].is_punct("{") {
                end = braces[j].unwrap_or(end);
                break;
            }
            if toks[j].is_punct(";") {
                end = j;
                break;
            }
            j += 1;
        }
        for flag in mask.iter_mut().take(end + 1).skip(i) {
            *flag = true;
        }
        i = end + 1;
    }
    mask
}

/// Extracts impl headers. `braces` is the `{`/`}` match map.
fn parse_impls(toks: &[Tok], braces: &[Option<usize>]) -> Vec<ImplItem> {
    let mut impls = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_ident("impl") {
            i += 1;
            continue;
        }
        // Header: tokens until the body `{` (or a `;`, malformed).
        let mut open = None;
        let mut j = i + 1;
        while j < toks.len() {
            if toks[j].is_punct("{") {
                open = Some(j);
                break;
            }
            if toks[j].is_punct(";") {
                break;
            }
            j += 1;
        }
        let Some(open) = open else {
            i = j + 1;
            continue;
        };
        let header = &toks[i + 1..open];
        // Split at a top-level `for` (angle-depth 0): `impl Trait for Type`.
        let mut angle = 0i64;
        let mut for_pos = None;
        for (k, t) in header.iter().enumerate() {
            match t.text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                "<<" => angle += 2,
                ">>" => angle -= 2,
                "for" if t.kind == TokKind::Ident && angle == 0 => {
                    for_pos = Some(k);
                    break;
                }
                _ => {}
            }
        }
        let last_top_ident = |slice: &[Tok]| -> String {
            let mut angle = 0i64;
            let mut name = String::new();
            for t in slice {
                match t.text.as_str() {
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    "<<" => angle += 2,
                    ">>" => angle -= 2,
                    "where" if t.kind == TokKind::Ident && angle == 0 => break,
                    _ if t.kind == TokKind::Ident && angle == 0 => name = t.text.clone(),
                    _ => {}
                }
            }
            name
        };
        let (trait_name, type_name) = match for_pos {
            Some(k) => (
                Some(last_top_ident(&header[..k])),
                last_top_ident(&header[k + 1..]),
            ),
            None => (None, last_top_ident(header)),
        };
        let close = braces[open].unwrap_or(toks.len() - 1);
        impls.push(ImplItem {
            type_name,
            trait_name,
            line: toks[i].line,
            body: (open, close),
        });
        // Continue scanning *inside* the impl (nested impls are rare but
        // fns inside this one are found by the fn scan).
        i += 1;
    }
    impls
}

/// Collects pattern identifiers from a parameter list token slice (between
/// the parens, one parameter = tokens up to a top-level `,`). Identifiers
/// in the pattern part (before the `:`) are bound names; `self` is kept.
fn param_idents(params: &[Tok]) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i64;
    let mut seen_colon = false;
    for t in params {
        match t.text.as_str() {
            "(" | "[" | "{" | "<" => depth += 1,
            ")" | "]" | "}" | ">" => depth -= 1,
            "," if depth == 0 => seen_colon = false,
            ":" if depth == 0 => seen_colon = true,
            _ if !seen_colon && t.kind == TokKind::Ident && t.text != "mut" && t.text != "ref" => {
                out.push(t.text.clone());
            }
            _ => {}
        }
    }
    out
}

/// Records every call site in `toks[span]`.
fn collect_calls(toks: &[Tok], span: (usize, usize), angles_ok: bool) -> Vec<CallSite> {
    let (a, b) = span;
    let mut out = Vec::new();
    let mut k = a;
    while k <= b && k < toks.len() {
        let t = &toks[k];
        if t.kind != TokKind::Ident || NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
            k += 1;
            continue;
        }
        // Macro invocation `name!(...)`: not a fn call.
        if toks.get(k + 1).is_some_and(|n| n.is_punct("!")) {
            k += 2;
            continue;
        }
        // Optional turbofish between the name and the call parens.
        let mut j = k + 1;
        if angles_ok
            && toks.get(j).is_some_and(|n| n.is_punct("::"))
            && toks.get(j + 1).is_some_and(|n| n.is_punct("<"))
        {
            let mut depth = 0i64;
            let mut m = j + 1;
            while m <= b && m < toks.len() {
                match toks[m].text.as_str() {
                    "<" => depth += 1,
                    ">" => depth -= 1,
                    ">>" => depth -= 2,
                    _ => {}
                }
                m += 1;
                if depth <= 0 {
                    break;
                }
            }
            j = m;
        }
        if toks.get(j).is_some_and(|n| n.is_punct("(")) {
            let self_receiver = k >= 2 && toks[k - 1].is_punct(".") && toks[k - 2].is_ident("self");
            out.push(CallSite {
                callee: t.text.clone(),
                line: t.line,
                self_receiver,
            });
        }
        k += 1;
    }
    out
}

/// Parses one source file into its item model.
#[must_use]
pub fn parse_file(path: PathBuf, source: &str) -> FileModel {
    let Lexed { toks, comments } = lex(source);
    let braces = delim_match(&toks, "{", "}");
    let mask = test_mask(&toks, &braces);
    let impls = parse_impls(&toks, &braces);
    let mut fns = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_ident("fn") {
            i += 1;
            continue;
        }
        let Some(name_tok) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
            i += 1;
            continue;
        };
        let name = name_tok.text.clone();
        // `pub` lookback: scan to the previous item boundary.
        let mut is_pub = false;
        {
            let mut k = i;
            while k > 0 {
                k -= 1;
                let t = &toks[k];
                if t.is_punct(";") || t.is_punct("{") || t.is_punct("}") {
                    break;
                }
                if t.is_ident("pub") {
                    is_pub = true;
                    break;
                }
            }
        }
        // Signature: tokens from `fn` to the body `{` or a `;`. Generic
        // parameter lists and where-clauses contain no braces, so the first
        // `{` is the body.
        let mut open = None;
        let mut sig_end = toks.len();
        let mut j = i;
        while j < toks.len() {
            if toks[j].is_punct("{") {
                open = Some(j);
                sig_end = j;
                break;
            }
            if toks[j].is_punct(";") {
                sig_end = j;
                break;
            }
            j += 1;
        }
        let sig: String = toks[i..sig_end]
            .iter()
            .map(|t| t.text.as_str())
            .collect::<Vec<_>>()
            .join(" ");
        // Parameters: the first paren group after the name.
        let mut params = Vec::new();
        {
            let mut k = i + 2;
            while k < sig_end {
                if toks[k].is_punct("(") {
                    // Find matching close within the signature.
                    let mut depth = 0i64;
                    let mut m = k;
                    while m < sig_end {
                        if toks[m].is_punct("(") {
                            depth += 1;
                        } else if toks[m].is_punct(")") {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        m += 1;
                    }
                    params = param_idents(&toks[k + 1..m.min(sig_end)]);
                    break;
                }
                k += 1;
            }
        }
        let body = open.map(|o| (o, braces[o].unwrap_or(toks.len() - 1)));
        let impl_idx = impls
            .iter()
            .enumerate()
            .filter(|(_, im)| im.body.0 < i && i < im.body.1)
            .min_by_key(|(_, im)| im.body.1 - im.body.0)
            .map(|(idx, _)| idx);
        let calls = body.map_or_else(Vec::new, |(o, c)| collect_calls(&toks, (o, c), true));
        fns.push(FnItem {
            name,
            line: toks[i].line,
            is_pub,
            sig,
            params,
            body,
            impl_idx,
            in_test: mask.get(i).copied().unwrap_or(false),
            calls,
        });
        i += 2;
    }
    FileModel {
        path,
        toks,
        comments,
        test_mask: mask,
        impls,
        fns,
    }
}

impl FileModel {
    /// The flattened signature with all whitespace removed — convenient for
    /// `&mut Cluster` / `&mut self` matching.
    #[must_use]
    pub fn flat_sig(f: &FnItem) -> String {
        f.sig.split_whitespace().collect()
    }

    /// `true` when `f` is a method of an inherent `impl Cluster` block.
    #[must_use]
    pub fn in_inherent_cluster_impl(&self, f: &FnItem) -> bool {
        f.impl_idx.is_some_and(|idx| {
            let im = &self.impls[idx];
            im.type_name == "Cluster" && im.trait_name.is_none()
        })
    }

    /// All identifier texts in `f`'s body span (empty for bodyless fns).
    pub fn body_idents<'a>(&'a self, f: &FnItem) -> impl Iterator<Item = &'a Tok> {
        let (a, b) = f.body.unwrap_or((1, 0));
        self.toks[a.min(self.toks.len())..(b + 1).min(self.toks.len())]
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn model(src: &str) -> FileModel {
        parse_file(Path::new("x.rs").to_path_buf(), src)
    }

    #[test]
    fn fn_items_with_bodies_and_calls() {
        let m = model("pub fn outer(cluster: &mut Cluster) -> usize {\n    helper(cluster);\n    cluster.charge_rounds(1);\n    0\n}\nfn helper(c: &mut Cluster) {}\n");
        assert_eq!(m.fns.len(), 2);
        let outer = &m.fns[0];
        assert!(outer.is_pub);
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.params, vec!["cluster"]);
        assert!(FileModel::flat_sig(outer).contains("&mutCluster"));
        let callees: Vec<&str> = outer.calls.iter().map(|c| c.callee.as_str()).collect();
        assert_eq!(callees, vec!["helper", "charge_rounds"]);
        assert!(!m.fns[1].is_pub);
    }

    #[test]
    fn impl_headers_trait_and_inherent() {
        let m = model(
            "impl Cluster {\n    pub fn f(&mut self) {}\n}\nimpl<'a> MpcVertexAlgorithm for Foo<'a> {\n    fn run(&self) {}\n}\n",
        );
        assert_eq!(m.impls.len(), 2);
        assert_eq!(m.impls[0].type_name, "Cluster");
        assert!(m.impls[0].trait_name.is_none());
        assert_eq!(m.impls[1].type_name, "Foo");
        assert_eq!(m.impls[1].trait_name.as_deref(), Some("MpcVertexAlgorithm"));
        assert!(m.in_inherent_cluster_impl(&m.fns[0]));
        assert!(!m.in_inherent_cluster_impl(&m.fns[1]));
    }

    #[test]
    fn cfg_test_regions_are_masked() {
        let m = model("fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn scaffolding() {}\n}\n");
        assert!(!m.fns[0].in_test);
        assert!(m.fns[1].in_test);
    }

    #[test]
    fn macros_and_keywords_are_not_calls() {
        let m = model("fn f() {\n    assert!(true);\n    if x() { vec![1] } else { g() }\n}\n");
        let callees: Vec<&str> = m.fns[0].calls.iter().map(|c| c.callee.as_str()).collect();
        assert_eq!(callees, vec!["x", "g"]);
    }

    #[test]
    fn self_receiver_is_tracked() {
        let m = model("fn f(&mut self) {\n    self.charge_rounds(1);\n    other.thing();\n}\n");
        assert!(m.fns[0].calls[0].self_receiver);
        assert!(!m.fns[0].calls[1].self_receiver);
    }

    #[test]
    fn turbofish_calls_are_detected() {
        let m = model("fn f() { parse::<u32>(s); }\n");
        assert_eq!(m.fns[0].calls[0].callee, "parse");
    }

    #[test]
    fn bodyless_trait_methods() {
        let m = model("trait T {\n    fn required(&self) -> usize;\n    fn provided(&self) -> usize { 1 }\n}\n");
        assert_eq!(m.fns[0].name, "required");
        assert!(m.fns[0].body.is_none());
        assert!(m.fns[1].body.is_some());
    }
}
