//! Parallel-closure race / nondeterminism detection (`par-closure-race`
//! lint).
//!
//! The seq-vs-par bit-identity contract (DESIGN §5d) requires every
//! closure handed to `csmpc_parallel::par_map` / `par_map_mut` /
//! `par_map_range` to be a pure per-item map: it may mutate *its own item*
//! (the `par_map_mut` parameter) and its own `let`-bound locals, and
//! nothing else. This pass analyzes each such closure for the ways that
//! contract is broken in practice:
//!
//! * **captured mutation** — assignment (`x = ...`, `x += ...`) or a
//!   mutating method call (`x.push(...)`, `x.insert(...)`, ...) whose
//!   receiver root is not a closure parameter or a local binding;
//! * **interior mutability** — `RefCell` / `Cell` / `Mutex` / `RwLock` /
//!   `UnsafeCell` / atomics named in the closure, `borrow_mut` / `lock` /
//!   `fetch_*` / `store` calls, or a call into a workspace function whose
//!   own body uses interior mutability (one level deep — the
//!   `with_thread_workspace` pattern);
//! * **unordered iteration** — `HashMap` / `HashSet` mentioned inside the
//!   closure (iteration order varies per process, so even a pure map over
//!   one is nondeterministic).
//!
//! Closures inside `#[csmpc_hot]`-marked functions get no special
//! treatment — the hot path is exactly where a silent race would do the
//! most damage.

use crate::callgraph::CallGraph;
use crate::lex::{Tok, TokKind};
use crate::syntax::FileModel;
use crate::{Diagnostic, Lint, Severity};

/// The approved deterministic-parallelism entry points.
const PAR_ENTRY_POINTS: &[&str] = &["par_map", "par_map_mut", "par_map_range"];

/// Mutating method names (receiver must be closure-local).
const MUT_METHODS: &[&str] = &[
    "push",
    "push_str",
    "insert",
    "remove",
    "extend",
    "clear",
    "truncate",
    "drain",
    "retain",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "swap",
    "swap_remove",
    "fill",
    "resize",
    "get_mut",
    "iter_mut",
    "split_at_mut",
];

/// Interior-mutability type names.
const INTERIOR_TYPES: &[&str] = &[
    "RefCell",
    "Cell",
    "Mutex",
    "RwLock",
    "UnsafeCell",
    "OnceCell",
    "AtomicBool",
    "AtomicUsize",
    "AtomicIsize",
    "AtomicU32",
    "AtomicU64",
    "AtomicI32",
    "AtomicI64",
];

/// Interior-mutability access calls.
const INTERIOR_CALLS: &[&str] = &[
    "borrow_mut",
    "lock",
    "write",
    "store",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "compare_exchange",
];

/// Unordered collections (nondeterministic iteration order).
const UNORDERED: &[&str] = &["HashMap", "HashSet"];

/// One parallel-closure call site: the closure's parameter names and body
/// token span.
struct ParClosure {
    entry: String,
    params: Vec<String>,
    body: (usize, usize),
}

/// Finds `par_map*(...)` call sites in `toks[span]` and extracts the
/// closure argument of each.
fn find_par_closures(toks: &[Tok], span: (usize, usize)) -> Vec<ParClosure> {
    let mut out = Vec::new();
    let (a, b) = span;
    let mut k = a;
    while k <= b && k < toks.len() {
        let t = &toks[k];
        if t.kind != TokKind::Ident || !PAR_ENTRY_POINTS.contains(&t.text.as_str()) {
            k += 1;
            continue;
        }
        let Some(open) = toks.get(k + 1).filter(|n| n.is_punct("(")) else {
            k += 1;
            continue;
        };
        let _ = open;
        // Matching close paren of the call.
        let mut depth = 0i64;
        let mut close = k + 1;
        let mut m = k + 1;
        while m <= b && m < toks.len() {
            if toks[m].is_punct("(") {
                depth += 1;
            } else if toks[m].is_punct(")") {
                depth -= 1;
                if depth == 0 {
                    close = m;
                    break;
                }
            }
            m += 1;
        }
        // First `|` (or `||`) at call-argument depth opens the closure.
        let mut params = Vec::new();
        let mut body_start = None;
        let mut m = k + 2;
        while m < close {
            if toks[m].is_punct("||") {
                body_start = Some(m + 1);
                break;
            }
            if toks[m].is_punct("|") {
                // Parameter list to the matching `|`.
                let mut p = m + 1;
                let mut ptoks = Vec::new();
                while p < close && !toks[p].is_punct("|") {
                    ptoks.push(toks[p].clone());
                    p += 1;
                }
                params = ptoks
                    .iter()
                    .filter(|t| t.kind == TokKind::Ident && t.text != "mut" && t.text != "ref")
                    .map(|t| t.text.clone())
                    .collect();
                body_start = Some(p + 1);
                break;
            }
            m += 1;
        }
        if let Some(start) = body_start {
            if start < close {
                out.push(ParClosure {
                    entry: t.text.clone(),
                    params,
                    body: (start, close - 1),
                });
            }
        }
        k += 1;
    }
    out
}

/// Collects closure-local names: parameters, `let` bindings, `for`-loop
/// bindings, and nested-closure parameters inside the body span.
fn local_names(toks: &[Tok], closure: &ParClosure) -> Vec<String> {
    let mut locals = closure.params.clone();
    let (a, b) = closure.body;
    let mut k = a;
    while k <= b && k < toks.len() {
        let t = &toks[k];
        if t.is_ident("let") {
            // Idents between `let` and `=` (stop early at `;`), skipping
            // everything after a type-annotation `:`.
            let mut m = k + 1;
            let mut after_colon = false;
            while m <= b && !toks[m].is_punct("=") && !toks[m].is_punct(";") {
                if toks[m].is_punct(":") {
                    after_colon = true;
                }
                if !after_colon && toks[m].kind == TokKind::Ident {
                    locals.push(toks[m].text.clone());
                }
                m += 1;
            }
            k = m;
            continue;
        }
        if t.is_ident("for") {
            let mut m = k + 1;
            while m <= b && !toks[m].is_ident("in") {
                if toks[m].kind == TokKind::Ident {
                    locals.push(toks[m].text.clone());
                }
                m += 1;
            }
            k = m;
            continue;
        }
        if t.is_punct("|") {
            // Nested closure parameter list.
            let mut m = k + 1;
            while m <= b && !toks[m].is_punct("|") {
                if toks[m].kind == TokKind::Ident && toks[m].text != "mut" && toks[m].text != "ref"
                {
                    locals.push(toks[m].text.clone());
                }
                m += 1;
            }
            k = m + 1;
            continue;
        }
        k += 1;
    }
    locals
}

/// Walks left from `idx` (exclusive) over a `root.path[i].field` chain and
/// returns the chain's root identifier, if the left context is a plain
/// place expression.
fn chain_root(toks: &[Tok], mut idx: usize) -> Option<String> {
    let mut root = None;
    loop {
        if idx == 0 {
            break;
        }
        idx -= 1;
        let t = &toks[idx];
        if t.kind == TokKind::Ident {
            root = Some(t.text.clone());
            // Keep walking only if a `.` or `::` continues the chain left.
            if idx == 0 {
                break;
            }
            let prev = &toks[idx - 1];
            if prev.is_punct(".") || prev.is_punct("::") {
                idx -= 1; // skip the separator, continue to next segment
                continue;
            }
            break;
        }
        if t.is_punct("]") {
            // Skip the index expression to its opening bracket.
            let mut depth = 0i64;
            loop {
                let u = &toks[idx];
                if u.is_punct("]") {
                    depth += 1;
                } else if u.is_punct("[") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if idx == 0 {
                    return None;
                }
                idx -= 1;
            }
            continue;
        }
        // `*x = ...` deref-assignments: keep walking through `*`.
        if t.is_punct("*") {
            continue;
        }
        break;
    }
    root
}

/// Analyzes one closure; pushes findings.
#[allow(clippy::too_many_lines)]
fn analyze_closure(
    fm: &FileModel,
    closure: &ParClosure,
    interior_fns: &[String],
    out: &mut Vec<Diagnostic>,
) {
    let toks = &fm.toks;
    let locals = local_names(toks, closure);
    let is_local = |name: &str| name == "_" || locals.iter().any(|l| l == name);
    let (a, b) = closure.body;
    let mut reported_lines = std::collections::BTreeSet::new();
    let mut push = |line: usize, message: String, out: &mut Vec<Diagnostic>| {
        if reported_lines.insert((line, message.clone())) {
            out.push(Diagnostic {
                lint: Lint::ParClosureRace,
                severity: Severity::Error,
                file: fm.path.clone(),
                line,
                message,
                witness: vec![format!("closure passed to {}", closure.entry)],
            });
        }
    };
    let mut k = a;
    while k <= b && k < toks.len() {
        let t = &toks[k];
        if t.kind == TokKind::Ident {
            if INTERIOR_TYPES.contains(&t.text.as_str()) {
                push(
                    t.line,
                    format!(
                        "`{}` inside a {} closure: interior mutability makes the sweep's \
                         side effects depend on thread schedule, breaking seq-vs-par \
                         bit-identity",
                        t.text, closure.entry
                    ),
                    out,
                );
            } else if UNORDERED.contains(&t.text.as_str()) {
                push(
                    t.line,
                    format!(
                        "`{}` inside a {} closure: unordered iteration makes the per-item \
                         computation nondeterministic across runs",
                        t.text, closure.entry
                    ),
                    out,
                );
            } else if toks.get(k + 1).is_some_and(|n| n.is_punct("(")) {
                let callee = t.text.as_str();
                let is_method = k > 0 && toks[k - 1].is_punct(".");
                if INTERIOR_CALLS.contains(&callee) && is_method {
                    let root = chain_root(toks, k - 1);
                    if root.as_deref().is_none_or(|r| !is_local(r)) {
                        push(
                            t.line,
                            format!(
                                "`.{callee}(...)` on captured state inside a {} closure: \
                                 interior-mutability access from parallel workers is a data \
                                 race on the bit-identity contract",
                                closure.entry
                            ),
                            out,
                        );
                    }
                } else if MUT_METHODS.contains(&callee) && is_method {
                    let root = chain_root(toks, k - 1);
                    if let Some(r) = root {
                        if !is_local(&r) {
                            push(
                                t.line,
                                format!(
                                    "`{r}.{callee}(...)` mutates captured state inside a {} \
                                     closure; parallel workers would race on `{r}` (mutate \
                                     only the closure's own item or locals)",
                                    closure.entry
                                ),
                                out,
                            );
                        }
                    }
                } else if interior_fns.iter().any(|f| f == callee) {
                    push(
                        t.line,
                        format!(
                            "call to `{callee}` inside a {} closure: its body uses interior \
                             mutability (RefCell/Mutex/atomics); if the shared state is \
                             per-thread by construction, annotate the call site with \
                             `csmpc-allow(par-closure-race): <reason>`",
                            closure.entry
                        ),
                        out,
                    );
                }
            }
        } else if t.is_punct("=")
            || ["+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="]
                .contains(&t.text.as_str())
        {
            if let Some(root) = chain_root(toks, k) {
                if !is_local(&root) && root != "let" {
                    push(
                        t.line,
                        format!(
                            "assignment to captured `{root}` inside a {} closure; parallel \
                             workers would race on it (bind locals with `let`, or return the \
                             value and merge sequentially)",
                            closure.entry
                        ),
                        out,
                    );
                }
            }
        }
        k += 1;
    }
}

/// Runs the pass: every `par_map*` closure in non-test code is analyzed.
#[must_use]
pub fn run(files: &[FileModel], graph: &CallGraph) -> Vec<Diagnostic> {
    // Workspace functions whose bodies use interior mutability directly
    // (one-level-deep interprocedural check for the thread-local-workspace
    // pattern).
    let mut interior_fns = Vec::new();
    for node in 0..graph.nodes.len() {
        let id = graph.nodes[node];
        let fm = &files[id.file];
        let f = &fm.fns[id.item];
        // Ubiquitous names are skipped for the same reason the call graph
        // builds no edges for them: every type has a `new`, so a bare
        // `new(...)` call site says nothing about which body runs, and one
        // constructor initializing a `Mutex` somewhere in the workspace
        // must not taint every `SplitMix64::new` in a parallel closure.
        if crate::callgraph::is_ubiquitous(&f.name) {
            continue;
        }
        let uses_interior = fm
            .body_idents(f)
            .any(|t| INTERIOR_TYPES.contains(&t.text.as_str()) || t.text == "borrow_mut");
        if uses_interior && !interior_fns.contains(&f.name) {
            interior_fns.push(f.name.clone());
        }
    }
    let mut out = Vec::new();
    for fm in files {
        for f in &fm.fns {
            if f.in_test {
                continue;
            }
            let Some(body) = f.body else { continue };
            for closure in find_par_closures(&fm.toks, body) {
                analyze_closure(fm, &closure, &interior_fns, &mut out);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::parse_file;
    use std::path::Path;

    fn run_src(src: &str) -> Vec<Diagnostic> {
        let files = vec![parse_file(Path::new("x.rs").to_path_buf(), src)];
        let graph = CallGraph::build(&files);
        run(&files, &graph)
    }

    #[test]
    fn pure_closures_are_clean() {
        let src = "\
fn sweep(mode: ParallelismMode, items: &[u64]) -> Vec<u64> {
    par_map(mode, items, |i, x| {
        let mut acc = *x;
        acc += i as u64;
        acc
    })
}
fn sweep_mut(mode: ParallelismMode, items: &mut [u64]) -> Vec<u64> {
    par_map_mut(mode, items, |i, item| {
        *item += i as u64;
        *item
    })
}
";
        assert!(run_src(src).is_empty(), "{:?}", run_src(src));
    }

    #[test]
    fn refcell_capture_is_flagged() {
        let src = "\
fn racy(mode: ParallelismMode, n: usize, log: &RefCell<Vec<usize>>) -> Vec<usize> {
    par_map_range(mode, n, |v| {
        log.borrow_mut().push(v);
        v
    })
}
";
        let d = run_src(src);
        assert!(!d.is_empty());
        assert!(d.iter().any(|x| x.message.contains("borrow_mut")), "{d:?}");
    }

    #[test]
    fn captured_push_and_assignment_are_flagged() {
        let src = "\
fn racy(mode: ParallelismMode, n: usize) -> Vec<usize> {
    let mut seen = Vec::new();
    let mut total = 0usize;
    par_map_range(mode, n, |v| {
        seen.push(v);
        total += v;
        v
    })
}
";
        let d = run_src(src);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d[0].message.contains("seen.push"));
        assert!(d[1].message.contains("total"));
    }

    #[test]
    fn unordered_map_in_closure_is_flagged() {
        let src = "\
fn racy(mode: ParallelismMode, n: usize) -> Vec<usize> {
    par_map_range(mode, n, |v| {
        let m: HashMap<usize, usize> = make_map(v);
        m.values().sum()
    })
}
";
        let d = run_src(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("HashMap"));
    }

    #[test]
    fn one_level_interior_mutability_is_flagged() {
        let src = "\
fn with_scratch<R>(f: impl FnOnce(&mut Scratch) -> R) -> R {
    SCRATCH.with(|s| f(&mut s.borrow_mut()))
}
fn sweep(mode: ParallelismMode, n: usize) -> Vec<usize> {
    par_map_range(mode, n, |v| with_scratch(|s| s.eval(v)))
}
";
        let d = run_src(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("with_scratch"), "{d:?}");
    }

    #[test]
    fn ubiquitous_constructor_names_do_not_taint_closures() {
        // A workspace type whose `new` builds a Mutex must not flag every
        // unrelated `Foo::new(...)` inside a parallel closure — `new` is
        // on the resolution deny list, so the one-level interior lookup
        // skips it (same trade-off as the call graph itself).
        let src = "\
impl JobService {
    pub fn new(cfg: ServiceConfig) -> Self {
        Self { state: Mutex::new(SchedState::fresh(&cfg)), cfg }
    }
}
fn sweep(mode: ParallelismMode, n: usize, seed: Seed) -> Vec<u64> {
    par_map_range(mode, n, |v| {
        let mut rng = SplitMix64::new(seed.derive(v as u64));
        rng.range(0, 10)
    })
}
";
        assert!(run_src(src).is_empty(), "{:?}", run_src(src));
    }

    #[test]
    fn mutating_own_param_chain_is_clean() {
        let src = "\
fn sweep(mode: ParallelismMode, shards: &mut [Shard]) -> Vec<usize> {
    par_map_mut(mode, shards, |id, shard| {
        shard.outbox.clear();
        shard.queue.push(id);
        shard.queue.len()
    })
}
";
        assert!(run_src(src).is_empty(), "{:?}", run_src(src));
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "\
#[cfg(test)]
mod tests {
    fn scaffolding(mode: ParallelismMode, n: usize, log: &RefCell<Vec<usize>>) {
        par_map_range(mode, n, |v| log.borrow_mut().push(v));
    }
}
";
        assert!(run_src(src).is_empty());
    }
}
