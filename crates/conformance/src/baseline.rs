//! Baseline files: accepted findings that gate only *new* regressions.
//!
//! A baseline is a checked-in JSON file listing findings the team has
//! explicitly accepted (keyed by `(file, lint, line)`). CI runs the
//! analyzer with `--baseline conformance-baseline.json`; findings present
//! in the baseline are reported as "baselined" and do not fail the build,
//! while any finding *not* in the baseline does. `--write-baseline`
//! regenerates the file from the current scan.
//!
//! Keys include the line number, so unrelated edits that shift a
//! baselined finding will surface it as new — that is deliberate: the
//! baseline is a migration aid, not a suppression mechanism (use
//! `csmpc-allow` with a reason for intentional, reviewed exceptions), so
//! friction that forces a fresh look at old findings is a feature.
//!
//! The parser below is a minimal recursive-descent JSON reader (the
//! analyzer is dependency-free by design); it handles exactly the JSON
//! subset any conforming writer emits: objects, arrays, strings with
//! escapes, integers, booleans, and null.

use crate::{Diagnostic, Report};
use std::collections::BTreeSet;
use std::fmt;

/// A baseline: the set of accepted `(file, lint, line)` keys.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    entries: BTreeSet<(String, String, usize)>,
}

/// Error parsing a baseline file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineError(String);

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "baseline parse error: {}", self.0)
    }
}

impl std::error::Error for BaselineError {}

// --------------------------------------------------------------------------
// Minimal JSON value + recursive-descent parser.
// --------------------------------------------------------------------------

/// A parsed JSON value (internal to baseline handling).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as f64; baselines only use line integers).
    Num(f64),
    /// String with escapes decoded.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as usize, if this is a non-negative number.
    #[must_use]
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 => Some(*x as usize),
            _ => None,
        }
    }
}

struct Parser<'a> {
    chars: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &str) -> BaselineError {
        BaselineError(format!("{what} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while self
            .chars
            .get(self.pos)
            .is_some_and(|c| c.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.chars.get(self.pos).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), BaselineError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", c as char)))
        }
    }

    fn value(&mut self) -> Result<Json, BaselineError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, BaselineError> {
        if self.chars[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn number(&mut self) -> Result<Json, BaselineError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|c| {
            c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E' || c == b'+' || c == b'-'
        }) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.chars[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("bad number"))
    }

    fn string(&mut self) -> Result<String, BaselineError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .chars
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy the full UTF-8 code point.
                    let s = std::str::from_utf8(&self.chars[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, BaselineError> {
        self.eat(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, BaselineError> {
        self.eat(b'{')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let v = self.value()?;
            out.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(out));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Parses a JSON document (exposed for the analyzer's own JSON round-trip
/// tests).
pub fn parse_json(text: &str) -> Result<Json, BaselineError> {
    let mut p = Parser {
        chars: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err(p.err("trailing content"));
    }
    Ok(v)
}

impl Baseline {
    /// An empty baseline (everything is a new finding).
    #[must_use]
    pub fn empty() -> Baseline {
        Baseline::default()
    }

    /// Number of accepted findings.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the baseline accepts nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Parses a baseline document: `{"findings": [{"file": .., "lint": ..,
    /// "line": ..}, ...]}`.
    pub fn parse(text: &str) -> Result<Baseline, BaselineError> {
        let doc = parse_json(text)?;
        let findings = doc
            .get("findings")
            .ok_or_else(|| BaselineError("missing `findings` array".into()))?;
        let Json::Arr(items) = findings else {
            return Err(BaselineError("`findings` is not an array".into()));
        };
        let mut entries = BTreeSet::new();
        for item in items {
            let file = item
                .get("file")
                .and_then(Json::as_str)
                .ok_or_else(|| BaselineError("finding missing `file`".into()))?;
            let lint = item
                .get("lint")
                .and_then(Json::as_str)
                .ok_or_else(|| BaselineError("finding missing `lint`".into()))?;
            let line = item
                .get("line")
                .and_then(Json::as_usize)
                .ok_or_else(|| BaselineError("finding missing `line`".into()))?;
            entries.insert((file.to_string(), lint.to_string(), line));
        }
        Ok(Baseline { entries })
    }

    /// Renders a baseline accepting every finding in `report`.
    #[must_use]
    pub fn render(report: &Report) -> String {
        let mut keys: Vec<(String, String, usize)> = report
            .diagnostics
            .iter()
            .map(|d| {
                (
                    d.file.display().to_string(),
                    d.lint.name().to_string(),
                    d.line,
                )
            })
            .collect();
        keys.sort();
        keys.dedup();
        let mut out = String::from("{\n  \"findings\": [");
        for (i, (file, lint, line)) in keys.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"file\": \"{}\", \"lint\": \"{lint}\", \"line\": {line}}}",
                crate::json_escape(file)
            ));
        }
        if !keys.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// `true` when the diagnostic is accepted by this baseline.
    #[must_use]
    pub fn accepts(&self, d: &Diagnostic) -> bool {
        self.entries.contains(&(
            d.file.display().to_string(),
            d.lint.name().to_string(),
            d.line,
        ))
    }

    /// Splits a report's findings into `(new, baselined)`.
    #[must_use]
    pub fn split<'d>(
        &self,
        diagnostics: &'d [Diagnostic],
    ) -> (Vec<&'d Diagnostic>, Vec<&'d Diagnostic>) {
        diagnostics.iter().partition(|d| !self.accepts(d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Lint, Severity};
    use std::path::PathBuf;

    fn finding(file: &str, lint: Lint, line: usize) -> Diagnostic {
        Diagnostic {
            lint,
            severity: Severity::Error,
            file: PathBuf::from(file),
            line,
            message: "m".into(),
            witness: Vec::new(),
        }
    }

    #[test]
    fn round_trip_render_parse_split() {
        let report = Report {
            diagnostics: vec![
                finding("a.rs", Lint::ChargeFlow, 10),
                finding("b.rs", Lint::ParClosureRace, 3),
            ],
            files_scanned: 2,
        };
        let text = Baseline::render(&report);
        let base = Baseline::parse(&text).unwrap();
        assert_eq!(base.len(), 2);
        let fresh = finding("a.rs", Lint::ChargeFlow, 11);
        let all = vec![
            finding("a.rs", Lint::ChargeFlow, 10),
            fresh.clone(),
            finding("b.rs", Lint::ParClosureRace, 3),
        ];
        let (new, old) = base.split(&all);
        assert_eq!(new.len(), 1);
        assert_eq!(new[0], &fresh);
        assert_eq!(old.len(), 2);
    }

    #[test]
    fn empty_baseline_accepts_nothing() {
        let base = Baseline::parse("{\"findings\": []}").unwrap();
        assert!(base.is_empty());
        assert!(!base.accepts(&finding("a.rs", Lint::ChargeFlow, 1)));
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(Baseline::parse("{").is_err());
        assert!(Baseline::parse("{\"nope\": []}").is_err());
        assert!(Baseline::parse("{\"findings\": [{\"file\": \"a\"}]}").is_err());
    }

    #[test]
    fn json_parser_handles_escapes_and_nesting() {
        let doc =
            parse_json("{\"a\": [1, 2.5, -3], \"s\": \"x\\n\\\"y\\\"\", \"b\": true, \"n\": null}")
                .unwrap();
        assert_eq!(doc.get("b"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("x\n\"y\""));
        assert!(parse_json("[1, 2,]").is_err());
        assert!(parse_json("{} trailing").is_err());
    }
}
