//! # csmpc-conformance
//!
//! The **static half** of the model-conformance analyzer: a self-contained,
//! dependency-free source scanner that enforces the repository's MPC-model
//! discipline (the runtime half lives in `csmpc_core::conformance`).
//!
//! Two layers share one diagnostic model:
//!
//! 1. **Token-level lints** (this module) — line-oriented scans over
//!    scrubbed source. Cheap, zero-context, and intentionally local.
//! 2. **Syntax-aware passes** ([`charge_flow`], [`races`],
//!    [`stability_flow`]) — a dependency-free lexer ([`lex`]), item parser
//!    ([`syntax`]), and workspace call graph ([`callgraph`]) feed three
//!    interprocedural analyses that upgrade the accounting and stability
//!    lints from textual to transitive, and add parallel-closure race
//!    detection. [`analyze_workspace`] runs both layers, applies
//!    `csmpc-allow` suppressions ([`suppress`]), and reports unused
//!    suppressions; [`baseline`] gates CI on *new* findings only.
//!
//! The lints, each tied to a definition of the source paper
//! (*Component Stability in Low-Space Massively Parallel Computation*,
//! PODC 2021):
//!
//! * [`Lint::Nondeterminism`] — simulator code must be replayable from the
//!   shared seed (Definition 9, replicability). Wall-clock reads
//!   (`SystemTime`, `Instant`), OS entropy (`thread_rng`, `OsRng`, …) and
//!   order-nondeterministic collections (`HashMap`, `HashSet`) are
//!   forbidden in non-test code of `crates/algorithms`, `crates/mpc`, and
//!   `crates/derand`; all randomness must derive from
//!   `csmpc_graph::rng::Seed`.
//! * [`Lint::UnaccountedPrimitive`] — every public graph-touching
//!   primitive in `crates/mpc/src/distributed.rs` that drives a
//!   `&mut Cluster` must charge the `Stats` ledger (via `charge_rounds`,
//!   `charge_words`, `charge_storage`, `require_fits`, `run_program`, or
//!   `advance_rounds`) before returning. Unaccounted primitives silently
//!   break the paper's round/space cost model (`S = n^φ`, Section 2.4.2).
//! * [`Lint::RecoveryAccounting`] — in `crates/mpc/src/**`, a function
//!   whose name marks it as a recovery path (`restore`, `recover`, or
//!   `retry`) and that mutates cluster state (`&mut Cluster` in its
//!   signature, or `&mut self` inside an inherent `impl Cluster` block)
//!   must charge the `Stats` ledger. Recovery is never free: replaying
//!   rounds from a checkpoint and reshipping machine state are real costs
//!   the cost model must see.
//! * [`Lint::StabilityDiscipline`] — an `MpcVertexAlgorithm` impl that
//!   declares `component_stable() == true` (Definition 13) must not reach
//!   global quantities except through the approved API: `count_nodes` and
//!   `max_degree` (Definition 13 allows `n` and `Δ`), and the
//!   component-local primitives (`neighbor_reduce`, `collect_balls`,
//!   `cc_labels`). Global mixes (`aggregate`, `broadcast`,
//!   `select_best_global`, `amplify`) and node-*name* reads (`g.name(v)` —
//!   stable outputs may depend on IDs, never names) are flagged.
//! * [`Lint::Determinism`] — parallel iterator chains in the simulator
//!   crates must materialize their results through an order-preserving
//!   merge. A raw `par_iter`/`into_par_iter` chain must end in `.collect()`
//!   (index order fixed by the executor) and must not be consumed by
//!   `.for_each(...)` or `.reduce(...)`, whose side-effect/merge order is
//!   unspecified in general rayon. The `csmpc_parallel::par_map*` helpers
//!   are the approved entry points and pass by construction. The lint also
//!   enforces the hot-path allocation discipline: a function marked with a
//!   `// #[csmpc_hot]` comment must not touch ordered maps
//!   (`BTreeMap`/`BTreeSet`) in its body — the reusable flat workspaces
//!   (`csmpc_graph::ball::BallWorkspace`) exist precisely so the hot paths
//!   never pay a per-call map allocation.
//! * [`Lint::ChargeFlow`] — transitive cost accounting: every function
//!   reachable from an engine entry point that mutates cluster state and
//!   touches communication machinery must reach a `Stats` charge through
//!   some call path (see [`charge_flow`]).
//! * [`Lint::ParClosureRace`] — closures handed to the
//!   `csmpc_parallel::par_map*` helpers must not capture mutable state,
//!   use interior mutability, or iterate unordered maps (see [`races`]).
//! * [`Lint::StabilityFlow`] — `MpcVertexAlgorithm` impls that reach
//!   component-provenance machinery must declare `component_stable()`
//!   explicitly, and claimed-stable impls must not transitively reach a
//!   cross-component mix (see [`stability_flow`]).
//! * [`Lint::UnusedSuppression`] — a `csmpc-allow` annotation that
//!   silences nothing is itself a finding (see [`suppress`]).
//!
//! Diagnostics carry `file:line` locations; a finding can be suppressed by
//! placing `// conformance: allow(<lint>)` (or `allow(all)`) on the same or
//! the immediately preceding line. [`Report::to_json`] renders a
//! machine-readable summary.
//!
//! The scanner is token/line-level by design: it blanks comments and string
//! literals, tracks `#[cfg(test)]` module regions (test code is exempt from
//! [`Lint::Nondeterminism`]), and brace-counts function and impl bodies. It
//! deliberately avoids a full parser — the lints only need identifier-level
//! precision, and a zero-dependency analyzer can run anywhere the workspace
//! builds.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod baseline;
pub mod callgraph;
pub mod charge_flow;
pub mod lex;
pub mod races;
pub mod stability_flow;
pub mod suppress;
pub mod syntax;

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The lints the analyzer knows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Lint {
    /// Forbidden sources of nondeterminism (breaks Definition 9
    /// replicability).
    Nondeterminism,
    /// A public cluster-driving primitive that never charges the `Stats`
    /// ledger.
    UnaccountedPrimitive,
    /// A recovery/restore/retry path that mutates cluster state without
    /// charging the `Stats` ledger (recovery must never be free).
    RecoveryAccounting,
    /// A component-stable-declared algorithm reaching global quantities
    /// outside the approved API (breaks Definition 13).
    StabilityDiscipline,
    /// A parallel iterator chain consumed without an order-preserving merge
    /// (results must be `.collect()`ed in index order; unordered
    /// `.for_each`/`.reduce` consumption breaks sequential/parallel
    /// bit-identity).
    Determinism,
    /// Transitive accounting: a reachable cluster-mutating function touches
    /// communication machinery with no call path reaching a `Stats` charge.
    ChargeFlow,
    /// A `par_map*` closure captures mutable state, uses interior
    /// mutability, or iterates an unordered map.
    ParClosureRace,
    /// An `MpcVertexAlgorithm` impl touching provenance machinery without
    /// an explicit `component_stable()` declaration, or a claimed-stable
    /// impl transitively reaching a cross-component mix.
    StabilityFlow,
    /// A `csmpc-allow` suppression that silences nothing.
    UnusedSuppression,
}

impl Lint {
    /// The lint's machine-readable name (used in `allow(...)` suppressions
    /// and JSON output).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Lint::Nondeterminism => "nondeterminism",
            Lint::UnaccountedPrimitive => "unaccounted-primitive",
            Lint::RecoveryAccounting => "recovery-accounting",
            Lint::StabilityDiscipline => "stability-discipline",
            Lint::Determinism => "determinism",
            Lint::ChargeFlow => "charge-flow",
            Lint::ParClosureRace => "par-closure-race",
            Lint::StabilityFlow => "stability-flow",
            Lint::UnusedSuppression => "unused-suppression",
        }
    }

    /// Parses a lint name (as used in suppression comments).
    #[must_use]
    pub fn from_name(name: &str) -> Option<Lint> {
        match name {
            "nondeterminism" => Some(Lint::Nondeterminism),
            "unaccounted-primitive" => Some(Lint::UnaccountedPrimitive),
            "recovery-accounting" => Some(Lint::RecoveryAccounting),
            "stability-discipline" => Some(Lint::StabilityDiscipline),
            "determinism" => Some(Lint::Determinism),
            "charge-flow" => Some(Lint::ChargeFlow),
            "par-closure-race" => Some(Lint::ParClosureRace),
            "stability-flow" => Some(Lint::StabilityFlow),
            "unused-suppression" => Some(Lint::UnusedSuppression),
            _ => None,
        }
    }

    /// Every lint, in stable order (drives SARIF rule metadata and docs).
    pub const ALL: &'static [Lint] = &[
        Lint::Nondeterminism,
        Lint::UnaccountedPrimitive,
        Lint::RecoveryAccounting,
        Lint::StabilityDiscipline,
        Lint::Determinism,
        Lint::ChargeFlow,
        Lint::ParClosureRace,
        Lint::StabilityFlow,
        Lint::UnusedSuppression,
    ];

    /// One-line rule description (SARIF rule metadata, README table).
    #[must_use]
    pub fn description(self) -> &'static str {
        match self {
            Lint::Nondeterminism => {
                "forbidden nondeterminism source (wall clock, OS entropy, unordered map) in \
                 replayable simulator code (Definition 9)"
            }
            Lint::UnaccountedPrimitive => {
                "public &mut Cluster primitive whose own body never charges the Stats ledger"
            }
            Lint::RecoveryAccounting => {
                "recovery/restore/retry path mutating cluster state without charging the Stats \
                 ledger"
            }
            Lint::StabilityDiscipline => {
                "component-stable-declared algorithm calling a global-mix API or reading node \
                 names (Definition 13)"
            }
            Lint::Determinism => {
                "parallel iterator chain without an order-preserving merge, or ordered-map \
                 allocation in a #[csmpc_hot] body"
            }
            Lint::ChargeFlow => {
                "reachable cluster-mutating function touches communication machinery with no \
                 call path reaching a Stats charge"
            }
            Lint::ParClosureRace => {
                "par_map* closure captures mutable state, uses interior mutability, or iterates \
                 an unordered map"
            }
            Lint::StabilityFlow => {
                "MpcVertexAlgorithm impl touching provenance without an explicit \
                 component_stable() declaration, or a claimed-stable impl reaching a \
                 cross-component mix"
            }
            Lint::UnusedSuppression => "csmpc-allow annotation that silences nothing",
        }
    }
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Finding severity. Both levels fail a baseline-gated build when new;
/// the distinction feeds SARIF `level` and lets downstream tooling rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Should be fixed or explicitly suppressed, but does not by itself
    /// contradict a paper invariant.
    Warning,
    /// Contradicts a model invariant (cost accounting, Definition 9/13).
    Error,
}

impl Severity {
    /// Machine-readable name (`"warning"` / `"error"`, as in SARIF).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding, anchored to a `file:line` location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which lint fired.
    pub lint: Lint,
    /// How severe the finding is.
    pub severity: Severity,
    /// File the finding is in (as passed to the checker; the workspace
    /// scanner uses workspace-relative paths).
    pub file: PathBuf,
    /// 1-indexed line of the finding.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
    /// Call-chain witness for interprocedural findings (function names,
    /// entry point first); empty for token-level findings.
    pub witness: Vec<String>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {} [{}] {}",
            self.file.display(),
            self.line,
            self.severity,
            self.lint,
            self.message
        )?;
        if !self.witness.is_empty() {
            write!(f, " (call chain: {})", self.witness.join(" -> "))?;
        }
        Ok(())
    }
}

/// Result of scanning a set of files.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// All findings, in (file, line) order.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// `true` when no lint fired.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Canonicalizes the finding list: sorted by `(file, line, lint)` and
    /// exact duplicates removed, so output is deterministic regardless of
    /// pass execution order.
    pub fn normalize(&mut self) {
        self.diagnostics
            .sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
        self.diagnostics.dedup();
    }

    /// Machine-readable JSON summary.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("  \"violations\": {},\n", self.diagnostics.len()));
        out.push_str("  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let witness = d
                .witness
                .iter()
                .map(|w| format!("\"{}\"", json_escape(w)))
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(
                "\n    {{\"lint\": \"{}\", \"severity\": \"{}\", \"file\": \"{}\", \
                 \"line\": {}, \"message\": \"{}\", \"witness\": [{witness}]}}",
                d.lint,
                d.severity,
                json_escape(&d.file.display().to_string()),
                d.line,
                json_escape(&d.message)
            ));
        }
        if !self.diagnostics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}");
        out
    }

    /// SARIF 2.1.0 log for code-scanning upload: one run, one rule per
    /// lint, one result per finding (witness rendered into the message).
    #[must_use]
    pub fn to_sarif(&self) -> String {
        let mut out = String::from(
            "{\n  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \
             \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n      \"tool\": {\n        \
             \"driver\": {\n          \"name\": \"csmpc-conformance\",\n          \
             \"informationUri\": \"https://arxiv.org/abs/2106.01880\",\n          \"rules\": [",
        );
        for (i, lint) in Lint::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}",
                lint.name(),
                json_escape(lint.description())
            ));
        }
        out.push_str("\n          ]\n        }\n      },\n      \"results\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let mut message = d.message.clone();
            if !d.witness.is_empty() {
                message.push_str(&format!(" [call chain: {}]", d.witness.join(" -> ")));
            }
            out.push_str(&format!(
                "\n        {{\n          \"ruleId\": \"{}\",\n          \"level\": \"{}\",\n          \
                 \"message\": {{\"text\": \"{}\"}},\n          \"locations\": [\n            \
                 {{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \
                 \"region\": {{\"startLine\": {}}}}}}}\n          ]\n        }}",
                d.lint,
                d.severity,
                json_escape(&message),
                json_escape(&d.file.display().to_string()),
                d.line
            ));
        }
        out.push_str("\n      ]\n    }\n  ]\n}\n");
        out
    }
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Source scrubbing: blank comments and string/char literals so the lints
// match code tokens only, while keeping comment text for suppressions.
// ---------------------------------------------------------------------------

/// A source file split into per-line code text (comments and literals
/// blanked) and per-line comment text (for suppression lookup).
#[derive(Debug, Clone, Default)]
struct Scrubbed {
    /// Code with comments and string/char literal *contents* removed.
    code: Vec<String>,
    /// Comment text, concatenated per line.
    comments: Vec<String>,
}

fn scrub(source: &str) -> Scrubbed {
    #[derive(Clone, Copy, PartialEq)]
    enum State {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(usize),
        CharLit,
    }
    let chars: Vec<char> = source.chars().collect();
    let mut code = vec![String::new()];
    let mut comments = vec![String::new()];
    let mut state = State::Code;
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            code.push(String::new());
            comments.push(String::new());
            i += 1;
            continue;
        }
        let line = code.len() - 1;
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    comments[line].push_str("//");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    i += 2;
                } else if c == 'r'
                    && matches!(next, Some('"') | Some('#'))
                    && !prev_is_ident(&chars, i)
                {
                    // Raw string r"..." / r#"..."# (any hash depth).
                    let mut j = i + 1;
                    let mut hashes = 0usize;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        state = State::RawStr(hashes);
                        i = j + 1;
                    } else {
                        code[line].push(c);
                        i += 1;
                    }
                } else if c == '"' {
                    state = State::Str;
                    i += 1;
                } else if c == '\'' {
                    // Char literal vs lifetime: 'x' or '\x...' is a literal.
                    if next == Some('\\') || (next.is_some() && chars.get(i + 2) == Some(&'\'')) {
                        state = State::CharLit;
                        i += 1;
                    } else {
                        code[line].push(c);
                        i += 1;
                    }
                } else {
                    code[line].push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                comments[line].push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else {
                    comments[line].push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    i += 2;
                } else if c == '"' {
                    state = State::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let closed = (1..=hashes).all(|k| chars.get(i + k) == Some(&'#'));
                    if closed {
                        state = State::Code;
                        i += 1 + hashes;
                    } else {
                        i += 1;
                    }
                } else {
                    i += 1;
                }
            }
            State::CharLit => {
                if c == '\\' {
                    i += 2;
                } else if c == '\'' {
                    state = State::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
        }
    }
    Scrubbed { code, comments }
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && is_ident_char(chars[i - 1])
}

/// `true` when `ident` occurs in `hay` as a standalone identifier.
fn contains_ident(hay: &str, ident: &str) -> bool {
    let mut start = 0usize;
    while let Some(pos) = hay[start..].find(ident) {
        let p = start + pos;
        let before_ok = p == 0 || !hay[..p].ends_with(is_ident_char);
        let after = p + ident.len();
        let after_ok = after >= hay.len() || !hay[after..].starts_with(is_ident_char);
        if before_ok && after_ok {
            return true;
        }
        start = p + ident.len();
    }
    false
}

/// Index of the line on which the brace block opening at-or-after
/// `start` closes (falls back to the last line for unbalanced input).
fn block_end(code: &[String], start: usize) -> usize {
    let mut depth = 0i64;
    let mut opened = false;
    for (j, line) in code.iter().enumerate().skip(start) {
        for ch in line.chars() {
            match ch {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => {
                    depth -= 1;
                    if opened && depth == 0 {
                        return j;
                    }
                }
                _ => {}
            }
        }
    }
    code.len().saturating_sub(1)
}

/// Marks lines belonging to `#[cfg(test)]` items (test modules are exempt
/// from the nondeterminism lint — tests may use HashMap scaffolding).
fn test_region_mask(code: &[String]) -> Vec<bool> {
    let mut mask = vec![false; code.len()];
    let mut i = 0usize;
    while i < code.len() {
        if code[i].contains("#[cfg(test)]") {
            let mut depth = 0i64;
            let mut opened = false;
            let mut j = i;
            while j < code.len() {
                let mut done = false;
                for ch in code[j].chars() {
                    match ch {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => {
                            depth -= 1;
                            if opened && depth == 0 {
                                done = true;
                                break;
                            }
                        }
                        // `#[cfg(test)] use x;` — item ends without a block.
                        ';' if !opened => {
                            done = true;
                            break;
                        }
                        _ => {}
                    }
                }
                mask[j] = true;
                if done {
                    break;
                }
                j += 1;
            }
            i = j;
        }
        i += 1;
    }
    mask
}

// ---------------------------------------------------------------------------
// Lint 1: nondeterminism
// ---------------------------------------------------------------------------

const NONDET_TOKENS: &[(&str, &str)] = &[
    (
        "SystemTime",
        "wall-clock read; simulator runs must be replayable from csmpc_graph::rng::Seed (Definition 9)",
    ),
    (
        "Instant",
        "monotonic-clock read; simulator runs must be replayable from csmpc_graph::rng::Seed (Definition 9)",
    ),
    (
        "thread_rng",
        "OS-seeded RNG breaks replicability (Definition 9); derive randomness from csmpc_graph::rng::Seed",
    ),
    (
        "OsRng",
        "OS entropy breaks replicability (Definition 9); derive randomness from csmpc_graph::rng::Seed",
    ),
    (
        "from_entropy",
        "OS entropy breaks replicability (Definition 9); derive randomness from csmpc_graph::rng::Seed",
    ),
    (
        "getrandom",
        "OS entropy breaks replicability (Definition 9); derive randomness from csmpc_graph::rng::Seed",
    ),
    (
        "RandomState",
        "randomized hasher state makes iteration order nondeterministic; use BTreeMap/BTreeSet",
    ),
    (
        "HashMap",
        "iteration order is nondeterministic across runs; use BTreeMap so executions are replayable",
    ),
    (
        "HashSet",
        "iteration order is nondeterministic across runs; use BTreeSet so executions are replayable",
    ),
];

fn lint_nondeterminism(scrubbed: &Scrubbed, mask: &[bool], file: &Path, out: &mut Vec<Diagnostic>) {
    for (idx, line) in scrubbed.code.iter().enumerate() {
        if mask[idx] {
            continue;
        }
        for &(token, why) in NONDET_TOKENS {
            if contains_ident(line, token) {
                out.push(Diagnostic {
                    lint: Lint::Nondeterminism,
                    severity: Severity::Error,
                    file: file.to_path_buf(),
                    line: idx + 1,
                    message: format!("use of `{token}`: {why}"),
                    witness: Vec::new(),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Lint 2: unaccounted-primitive
// ---------------------------------------------------------------------------

const CHARGE_TOKENS: &[&str] = &[
    "charge_rounds",
    "charge_words",
    "charge_storage",
    "charge_recovery",
    "charge_replay",
    "require_fits",
    "run_program",
    "advance_rounds",
];

fn lint_unaccounted_primitive(
    scrubbed: &Scrubbed,
    mask: &[bool],
    file: &Path,
    out: &mut Vec<Diagnostic>,
) {
    let code = &scrubbed.code;
    let mut i = 0usize;
    while i < code.len() {
        if mask[i] || !code[i].contains("pub fn") {
            i += 1;
            continue;
        }
        // Collect the signature up to the body-opening brace (or a `;`).
        let mut sig = String::new();
        let mut open_line = None;
        let mut j = i;
        while j < code.len() {
            sig.push_str(&code[j]);
            sig.push(' ');
            if code[j].contains('{') {
                open_line = Some(j);
                break;
            }
            if code[j].contains(';') {
                break;
            }
            j += 1;
        }
        let drives_cluster = sig
            .split_whitespace()
            .collect::<String>()
            .contains("&mutCluster");
        let Some(open) = open_line else {
            i = j + 1;
            continue;
        };
        if !drives_cluster {
            i += 1;
            continue;
        }
        let end = block_end(code, open);
        let body = code[open..=end].join("\n");
        if !CHARGE_TOKENS.iter().any(|t| contains_ident(&body, t)) {
            let fn_name = sig
                .split("fn ")
                .nth(1)
                .and_then(|rest| {
                    let name: String = rest.chars().take_while(|&c| is_ident_char(c)).collect();
                    (!name.is_empty()).then_some(name)
                })
                .unwrap_or_else(|| "<unknown>".to_string());
            out.push(Diagnostic {
                lint: Lint::UnaccountedPrimitive,
                severity: Severity::Error,
                file: file.to_path_buf(),
                line: i + 1,
                message: format!(
                    "public primitive `{fn_name}` drives `&mut Cluster` but never charges the \
                     Stats ledger (expected one of charge_rounds/charge_words/charge_storage/\
                     charge_recovery/require_fits/run_program/advance_rounds); unaccounted \
                     primitives break the S = n^phi cost model"
                ),
                witness: Vec::new(),
            });
        }
        i = end + 1;
    }
}

// ---------------------------------------------------------------------------
// Lint 3: recovery-accounting
// ---------------------------------------------------------------------------

/// Name fragments that mark a function as a recovery path. Beyond the
/// checkpoint-restore family, the supervision layer's speculation,
/// quarantine, and backoff paths all consume real rounds/words and must
/// charge the ledger too.
const RECOVERY_KEYWORDS: &[&str] = &[
    "restore",
    "recover",
    "retry",
    "speculate",
    "quarantine",
    "backoff",
    "replay",
];

/// Marks lines inside inherent `impl Cluster` blocks (`impl Cluster {`,
/// not `impl Trait for Cluster`), where `&mut self` means "mutates
/// cluster state".
fn cluster_impl_mask(code: &[String]) -> Vec<bool> {
    let mut mask = vec![false; code.len()];
    let mut i = 0usize;
    while i < code.len() {
        let trimmed = code[i].trim_start();
        let inherent = trimmed.starts_with("impl")
            && contains_ident(&code[i], "Cluster")
            && !contains_ident(&code[i], "for");
        if inherent {
            let end = block_end(code, i);
            for flag in mask.iter_mut().take(end + 1).skip(i) {
                *flag = true;
            }
            i = end + 1;
        } else {
            i += 1;
        }
    }
    mask
}

fn lint_recovery_accounting(
    scrubbed: &Scrubbed,
    mask: &[bool],
    file: &Path,
    out: &mut Vec<Diagnostic>,
) {
    let code = &scrubbed.code;
    let in_cluster_impl = cluster_impl_mask(code);
    let mut i = 0usize;
    while i < code.len() {
        if mask[i] || !contains_ident(&code[i], "fn") {
            i += 1;
            continue;
        }
        // Extract the function name following the `fn` keyword.
        let Some(fn_name) = code[i].split("fn ").nth(1).and_then(|rest| {
            let name: String = rest.chars().take_while(|&c| is_ident_char(c)).collect();
            (!name.is_empty()).then_some(name)
        }) else {
            i += 1;
            continue;
        };
        if !RECOVERY_KEYWORDS.iter().any(|kw| fn_name.contains(kw)) {
            i += 1;
            continue;
        }
        // Collect the signature up to the body-opening brace (or a `;` —
        // a bodyless trait declaration is out of scope).
        let mut sig = String::new();
        let mut open_line = None;
        let mut j = i;
        while j < code.len() {
            sig.push_str(&code[j]);
            sig.push(' ');
            if code[j].contains('{') {
                open_line = Some(j);
                break;
            }
            if code[j].contains(';') {
                break;
            }
            j += 1;
        }
        let Some(open) = open_line else {
            i = j + 1;
            continue;
        };
        let flat: String = sig.split_whitespace().collect();
        let mutates_cluster =
            flat.contains("&mutCluster") || (flat.contains("&mutself") && in_cluster_impl[i]);
        if !mutates_cluster {
            i += 1;
            continue;
        }
        let end = block_end(code, open);
        let body = code[open..=end].join("\n");
        if !CHARGE_TOKENS.iter().any(|t| contains_ident(&body, t)) {
            out.push(Diagnostic {
                lint: Lint::RecoveryAccounting,
                severity: Severity::Error,
                file: file.to_path_buf(),
                line: i + 1,
                message: format!(
                    "recovery path `{fn_name}` mutates cluster state but never charges the \
                     Stats ledger; recovery is never free — replayed rounds and reshipped \
                     checkpoint words are real costs the model must see"
                ),
                witness: Vec::new(),
            });
        }
        i = end + 1;
    }
}

// ---------------------------------------------------------------------------
// Lint 4: stability-discipline
// ---------------------------------------------------------------------------

/// Global-mixing calls a component-stable algorithm must not make. The
/// approved API is: `count_nodes`/`max_degree` (Definition 13 allows `n`
/// and `Δ`) and component-local primitives (`neighbor_reduce`,
/// `collect_balls`, `cc_labels`).
const GLOBAL_MIX_CALLS: &[(&str, &str)] = &[
    (
        ".aggregate(",
        "global aggregation mixes all components; Definition 13 allows a stable output to depend only on (CC(v), v, n, Delta, S)",
    ),
    (
        ".broadcast(",
        "broadcast hands every component a value of unrestricted origin; use count_nodes/max_degree for the global reads Definition 13 allows",
    ),
    (
        ".select_best_global(",
        "global winner selection is the canonical component-unstable step (Theorem 5)",
    ),
    (
        "amplify(",
        "success amplification selects a global winner and is component-unstable (Theorem 5)",
    ),
];

fn declares_stable(block: &[String]) -> bool {
    for (k, line) in block.iter().enumerate() {
        if line.contains("fn component_stable") {
            let end = block_end(block, k);
            let body = block[k..=end].join(" ");
            return contains_ident(&body, "true");
        }
    }
    false
}

/// `true` when `line` calls `.name(` on a receiver other than `self`
/// (node-name reads; stable outputs may depend on IDs, never names).
fn has_nonself_name_call(line: &str) -> bool {
    let mut start = 0usize;
    while let Some(pos) = line[start..].find(".name(") {
        let p = start + pos;
        let recv_rev: String = line[..p]
            .chars()
            .rev()
            .take_while(|&c| is_ident_char(c))
            .collect();
        let recv: String = recv_rev.chars().rev().collect();
        if recv != "self" {
            return true;
        }
        start = p + ".name(".len();
    }
    false
}

fn lint_stability_discipline(
    scrubbed: &Scrubbed,
    mask: &[bool],
    file: &Path,
    out: &mut Vec<Diagnostic>,
) {
    let code = &scrubbed.code;
    let mut i = 0usize;
    while i < code.len() {
        let is_impl = code[i].contains("impl") && code[i].contains("MpcVertexAlgorithm for");
        if mask[i] || !is_impl {
            i += 1;
            continue;
        }
        let end = block_end(code, i);
        if declares_stable(&code[i..=end]) {
            for (k, line) in code[i..=end].iter().enumerate() {
                let abs = i + k;
                if mask[abs] {
                    continue;
                }
                for &(call, why) in GLOBAL_MIX_CALLS {
                    if line.contains(call) {
                        let shown = call.trim_start_matches('.').trim_end_matches('(');
                        out.push(Diagnostic {
                            lint: Lint::StabilityDiscipline,
                            severity: Severity::Error,
                            file: file.to_path_buf(),
                            line: abs + 1,
                            message: format!(
                                "component-stable-declared algorithm calls `{shown}`: {why}"
                            ),
                            witness: Vec::new(),
                        });
                    }
                }
                if has_nonself_name_call(line) {
                    out.push(Diagnostic {
                        lint: Lint::StabilityDiscipline,
                        severity: Severity::Error,
                        file: file.to_path_buf(),
                        line: abs + 1,
                        message: "component-stable-declared algorithm reads a node *name*; \
                                  Definition 13 allows outputs to depend on IDs, never names"
                            .to_string(),
                        witness: Vec::new(),
                    });
                }
            }
        }
        i = end + 1;
    }
}

// ---------------------------------------------------------------------------
// Lint 5: determinism
// ---------------------------------------------------------------------------

/// Tokens that start a raw parallel-iterator chain. The
/// `csmpc_parallel::par_map*` helpers deliberately contain none of these
/// names, so code going through the approved entry points passes untouched.
const PAR_TOKENS: &[&str] = &["par_iter", "par_iter_mut", "into_par_iter", "par_bridge"];

/// How far a parallel chain may stretch before the scanner gives up looking
/// for its order-fixing merge.
const PAR_CHAIN_MAX_LINES: usize = 40;

/// Comment marker naming a function as engine hot-path code; it must be
/// the whole comment on its line (prose that merely *mentions* the marker
/// does not mark anything). Marked functions run once per vertex per
/// round (or tighter); the reusable flat workspaces exist so they never
/// allocate an ordered map per call, and constructing one there silently
/// reintroduces the churn the workspaces removed.
const HOT_MARKER: &str = "// #[csmpc_hot]";

/// Ordered-map identifiers forbidden inside hot-marked function bodies.
const HOT_ALLOC_TOKENS: &[&str] = &["BTreeMap", "BTreeSet"];

/// The hot-path arm of [`Lint::Determinism`]: scans function bodies whose
/// declaration is preceded by a [`HOT_MARKER`] comment and flags any
/// ordered-map mention inside them.
fn lint_hot_allocations(
    scrubbed: &Scrubbed,
    mask: &[bool],
    file: &Path,
    out: &mut Vec<Diagnostic>,
) {
    let code = &scrubbed.code;
    for (idx, comment) in scrubbed.comments.iter().enumerate() {
        if comment.trim() != HOT_MARKER {
            continue;
        }
        // The marker names the next function declaration at or below it.
        let Some(fn_line) = (idx..code.len()).find(|&j| contains_ident(&code[j], "fn")) else {
            continue;
        };
        let fn_name = code[fn_line]
            .split("fn ")
            .nth(1)
            .map(|rest| {
                rest.chars()
                    .take_while(|&c| is_ident_char(c))
                    .collect::<String>()
            })
            .filter(|name| !name.is_empty())
            .unwrap_or_else(|| "<unknown>".to_string());
        let mut open = None;
        for (j, line) in code.iter().enumerate().skip(fn_line) {
            if line.contains('{') {
                open = Some(j);
                break;
            }
            if line.contains(';') {
                break;
            }
        }
        let Some(open) = open else {
            continue;
        };
        let end = block_end(code, open);
        for (k, line) in code[open..=end].iter().enumerate() {
            let abs = open + k;
            if mask[abs] {
                continue;
            }
            for &token in HOT_ALLOC_TOKENS {
                if contains_ident(line, token) {
                    out.push(Diagnostic {
                        lint: Lint::Determinism,
                        severity: Severity::Error,
                        file: file.to_path_buf(),
                        line: abs + 1,
                        message: format!(
                            "`{token}` inside `#[csmpc_hot]`-marked `{fn_name}`: hot-path code \
                             must reuse the flat workspace buffers \
                             (csmpc_graph::ball::BallWorkspace) instead of paying a per-call \
                             ordered-map allocation"
                        ),
                        witness: Vec::new(),
                    });
                    break;
                }
            }
        }
    }
}

fn lint_determinism(scrubbed: &Scrubbed, mask: &[bool], file: &Path, out: &mut Vec<Diagnostic>) {
    lint_hot_allocations(scrubbed, mask, file, out);
    let code = &scrubbed.code;
    let mut i = 0usize;
    while i < code.len() {
        if mask[i] || !PAR_TOKENS.iter().any(|t| contains_ident(&code[i], t)) {
            i += 1;
            continue;
        }
        // The chain: from the parallel-iterator call to the end of the
        // statement (a `;`, or a `}` closing the surrounding tail
        // expression), capped for unbalanced input.
        let mut end = i;
        for (j, line) in code
            .iter()
            .enumerate()
            .skip(i)
            .take(PAR_CHAIN_MAX_LINES.max(1))
        {
            end = j;
            if line.contains(';') || line.contains('}') {
                break;
            }
        }
        let chain = code[i..=end].join("\n");
        if chain.contains(".for_each(") || chain.contains(".reduce(") {
            out.push(Diagnostic {
                lint: Lint::Determinism,
                severity: Severity::Error,
                file: file.to_path_buf(),
                line: i + 1,
                message: "parallel iterator chain is consumed by `.for_each`/`.reduce`, whose \
                          side-effect/merge order is unspecified; materialize results with an \
                          order-preserving `.collect()` (or use csmpc_parallel::par_map*) so \
                          sequential and parallel runs stay bit-identical"
                    .to_string(),
                witness: Vec::new(),
            });
        } else if !chain.contains(".collect") {
            out.push(Diagnostic {
                lint: Lint::Determinism,
                severity: Severity::Error,
                file: file.to_path_buf(),
                line: i + 1,
                message: "parallel iterator chain never materializes through an order-preserving \
                          `.collect()`; results must be merged in item-index order (or use \
                          csmpc_parallel::par_map*) so sequential and parallel runs stay \
                          bit-identical"
                    .to_string(),
                witness: Vec::new(),
            });
        }
        i = end + 1;
    }
}

// ---------------------------------------------------------------------------
// Suppression + entry points
// ---------------------------------------------------------------------------

/// `true` when the comment text suppresses `lint`
/// (`conformance: allow(<lint>)`, comma-separated lists, or `allow(all)`).
fn comment_allows(comment: &str, lint: Lint) -> bool {
    let mut rest = comment;
    while let Some(pos) = rest.find("conformance: allow(") {
        let after = &rest[pos + "conformance: allow(".len()..];
        if let Some(close) = after.find(')') {
            if after[..close]
                .split(',')
                .map(str::trim)
                .any(|name| name == "all" || name == lint.name())
            {
                return true;
            }
            rest = &after[close..];
        } else {
            break;
        }
    }
    false
}

fn is_suppressed(comments: &[String], line: usize, lint: Lint) -> bool {
    // `line` is 1-indexed; check the same and the preceding line.
    let same = comments
        .get(line - 1)
        .is_some_and(|c| comment_allows(c, lint));
    let prev = line >= 2
        && comments
            .get(line - 2)
            .is_some_and(|c| comment_allows(c, lint));
    same || prev
}

/// Runs the given lints over one source text. `file` is used only for
/// diagnostic locations.
#[must_use]
pub fn check_source(file: &Path, source: &str, lints: &[Lint]) -> Vec<Diagnostic> {
    let scrubbed = scrub(source);
    let mask = test_region_mask(&scrubbed.code);
    let mut diags = Vec::new();
    for &lint in lints {
        match lint {
            Lint::Nondeterminism => {
                lint_nondeterminism(&scrubbed, &mask, file, &mut diags);
            }
            Lint::UnaccountedPrimitive => {
                lint_unaccounted_primitive(&scrubbed, &mask, file, &mut diags);
            }
            Lint::RecoveryAccounting => {
                lint_recovery_accounting(&scrubbed, &mask, file, &mut diags);
            }
            Lint::StabilityDiscipline => {
                lint_stability_discipline(&scrubbed, &mask, file, &mut diags);
            }
            Lint::Determinism => {
                lint_determinism(&scrubbed, &mask, file, &mut diags);
            }
            // Interprocedural lints need the whole workspace; they run in
            // `analyze_sources`, not per file.
            Lint::ChargeFlow
            | Lint::ParClosureRace
            | Lint::StabilityFlow
            | Lint::UnusedSuppression => {}
        }
    }
    diags.retain(|d| !is_suppressed(&scrubbed.comments, d.line, d.lint));
    diags.sort_by_key(|a| (a.line, a.lint));
    diags
}

/// The lints that apply to a workspace-relative path (`/`-separated).
#[must_use]
pub fn lints_for_path(rel: &str) -> Vec<Lint> {
    let mut lints = vec![Lint::StabilityDiscipline];
    const NONDET_ROOTS: &[&str] = &[
        "crates/algorithms/src/",
        "crates/mpc/src/",
        "crates/derand/src/",
    ];
    if NONDET_ROOTS.iter().any(|p| rel.starts_with(p)) {
        lints.push(Lint::Nondeterminism);
    }
    if rel == "crates/mpc/src/distributed.rs" {
        lints.push(Lint::UnaccountedPrimitive);
    }
    // The service crate hosts the crash-recovery replay paths
    // (`recover`/`replay_journal`): replayed journal frames are real
    // work the ledger must see, so it shares the recovery-accounting
    // root with the engine.
    if rel.starts_with("crates/mpc/src/") || rel.starts_with("crates/service/src/") {
        lints.push(Lint::RecoveryAccounting);
    }
    const DETERMINISM_ROOTS: &[&str] = &[
        "crates/mpc/src/",
        "crates/local/src/",
        "crates/core/src/",
        "crates/algorithms/src/",
        "crates/derand/src/",
        "crates/parallel/src/",
        // The graph crate hosts the `#[csmpc_hot]`-marked ball workspace
        // kernels; the hot-path allocation arm polices them.
        "crates/graph/src/",
        // The job service promises bit-identical per-job outputs under
        // concurrent scheduling, so its sources obey the same ordered-
        // collection discipline. (It is deliberately NOT a nondeterminism
        // root: wall-clock observability like per-job latency is allowed
        // there, excluded from fingerprints by construction.)
        "crates/service/src/",
    ];
    if DETERMINISM_ROOTS.iter().any(|p| rel.starts_with(p)) {
        lints.push(Lint::Determinism);
    }
    lints
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<io::Result<_>>()?;
    // Deterministic scan order — the analyzer obeys its own nondeterminism
    // rule.
    entries.sort_by_key(std::fs::DirEntry::file_name);
    for entry in entries {
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scans `<root>/crates/*/src/**/*.rs`, applying each file's applicable
/// lints ([`lints_for_path`]). Diagnostics use workspace-relative paths.
///
/// # Errors
///
/// I/O errors reading the tree.
pub fn check_workspace(root: &Path) -> io::Result<Report> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<_> = fs::read_dir(&crates_dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    let mut report = Report::default();
    for crate_dir in crate_dirs {
        let src = crate_dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs_files(&src, &mut files)?;
        for file in files {
            let rel: String = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            let source = fs::read_to_string(&file)?;
            let lints = lints_for_path(&rel);
            report
                .diagnostics
                .extend(check_source(Path::new(&rel), &source, &lints));
            report.files_scanned += 1;
        }
    }
    Ok(report)
}

/// Runs **both** analysis layers — the token lints ([`check_source`],
/// path-gated by [`lints_for_path`]) and the syntax-aware interprocedural
/// passes ([`charge_flow`], [`races`], [`stability_flow`]) — over an
/// in-memory source set, applies `csmpc-allow` suppressions, reports
/// unused suppressions, and returns a normalized (sorted, deduped) report.
///
/// Paths are used both for diagnostics and for the path-gating of the
/// token lints, so pass workspace-relative `/`-separated paths.
#[must_use]
pub fn analyze_sources(sources: &[(PathBuf, String)]) -> Report {
    let files: Vec<syntax::FileModel> = sources
        .iter()
        .map(|(path, src)| syntax::parse_file(path.clone(), src))
        .collect();
    let graph = callgraph::CallGraph::build(&files);
    let mut pass_findings = Vec::new();
    pass_findings.extend(charge_flow::run(&files, &graph));
    pass_findings.extend(races::run(&files, &graph));
    pass_findings.extend(stability_flow::run(&files, &graph));

    let mut report = Report::default();
    for ((path, source), fm) in sources.iter().zip(&files) {
        let rel = path.display().to_string();
        let mut file_findings = check_source(path, source, &lints_for_path(&rel));
        file_findings.extend(pass_findings.iter().filter(|d| &d.file == path).cloned());
        report
            .diagnostics
            .extend(suppress::apply(path, &fm.comments, file_findings));
        report.files_scanned += 1;
    }
    report.normalize();
    report
}

/// Full-engine workspace scan: reads `<root>/crates/*/src/**/*.rs` and
/// runs [`analyze_sources`] over it. Diagnostics use workspace-relative
/// paths.
///
/// # Errors
///
/// I/O errors reading the tree.
pub fn analyze_workspace(root: &Path) -> io::Result<Report> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<_> = fs::read_dir(&crates_dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    let mut sources = Vec::new();
    for crate_dir in crate_dirs {
        let src = crate_dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs_files(&src, &mut files)?;
        for file in files {
            let rel: String = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            sources.push((PathBuf::from(rel), fs::read_to_string(&file)?));
        }
    }
    Ok(analyze_sources(&sources))
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: &[Lint] = &[
        Lint::Nondeterminism,
        Lint::UnaccountedPrimitive,
        Lint::RecoveryAccounting,
        Lint::StabilityDiscipline,
        Lint::Determinism,
    ];

    #[test]
    fn scrub_blanks_comments_and_strings() {
        let s = scrub("let x = \"HashMap\"; // HashMap here\nlet y = 1; /* Instant */");
        assert!(!s.code[0].contains("HashMap"));
        assert!(s.comments[0].contains("HashMap here"));
        assert!(!s.code[1].contains("Instant"));
    }

    #[test]
    fn scrub_handles_raw_strings_and_chars() {
        let s = scrub("let p = r#\"thread_rng\"#; let c = '\\n'; let l: &'static str = x;");
        assert!(!s.code[0].contains("thread_rng"));
        assert!(s.code[0].contains("static"), "lifetime kept: {}", s.code[0]);
    }

    #[test]
    fn ident_matching_requires_boundaries() {
        assert!(contains_ident("use std::collections::HashMap;", "HashMap"));
        assert!(!contains_ident("MyHashMapLike", "HashMap"));
        assert!(!contains_ident("HashMapx", "HashMap"));
    }

    #[test]
    fn nondeterminism_flags_clock_and_hash() {
        let src = "use std::time::Instant;\nfn f() { let m = HashMap::new(); }\n";
        let d = check_source(Path::new("x.rs"), src, &[Lint::Nondeterminism]);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].line, 1);
        assert_eq!(d[1].line, 2);
    }

    #[test]
    fn cfg_test_modules_are_exempt() {
        let src = "fn ok() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashSet;\n}\n";
        let d = check_source(Path::new("x.rs"), src, &[Lint::Nondeterminism]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn suppression_same_and_previous_line() {
        let src = "\
let a = HashMap::new(); // conformance: allow(nondeterminism)
// conformance: allow(nondeterminism)
let b = HashMap::new();
let c = HashMap::new();
";
        let d = check_source(Path::new("x.rs"), src, &[Lint::Nondeterminism]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 4);
    }

    #[test]
    fn allow_all_and_lists() {
        assert!(comment_allows(
            "// conformance: allow(all)",
            Lint::Nondeterminism
        ));
        assert!(comment_allows(
            "// conformance: allow(nondeterminism, stability-discipline)",
            Lint::StabilityDiscipline
        ));
        assert!(!comment_allows(
            "// conformance: allow(nondeterminism)",
            Lint::StabilityDiscipline
        ));
    }

    #[test]
    fn unaccounted_primitive_fires_and_charged_passes() {
        let src = "\
impl Dg {
    pub fn counted(&self, cluster: &mut Cluster) -> usize {
        cluster.charge_rounds(1);
        0
    }
    pub fn leaky(&self, cluster: &mut Cluster) -> usize {
        let _ = cluster;
        0
    }
}
";
        let d = check_source(Path::new("x.rs"), src, &[Lint::UnaccountedPrimitive]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 6);
        assert!(d[0].message.contains("leaky"));
    }

    #[test]
    fn unaccounted_ignores_cluster_free_fns() {
        let src = "pub fn pure(x: usize) -> usize { x + 1 }\n";
        let d = check_source(Path::new("x.rs"), src, &[Lint::UnaccountedPrimitive]);
        assert!(d.is_empty());
    }

    #[test]
    fn stability_discipline_fires_only_when_declared_stable() {
        let stable = "\
impl MpcVertexAlgorithm for A {
    fn component_stable(&self) -> bool {
        true
    }
    fn run(&self) {
        let t = dg.aggregate(cluster, &v, f);
        let nm = g.name(0);
        let me = self.name();
    }
}
";
        let d = check_source(Path::new("x.rs"), stable, &[Lint::StabilityDiscipline]);
        assert_eq!(d.len(), 2, "{d:?}");
        assert_eq!(d[0].line, 6);
        assert_eq!(d[1].line, 7);

        let unstable = stable.replace("true", "false");
        let d = check_source(Path::new("x.rs"), &unstable, &[Lint::StabilityDiscipline]);
        assert!(d.is_empty(), "{d:?}");

        let undeclared = "\
impl MpcVertexAlgorithm for B {
    fn run(&self) {
        let t = dg.aggregate(cluster, &v, f);
    }
}
";
        let d = check_source(Path::new("x.rs"), undeclared, &[Lint::StabilityDiscipline]);
        assert!(d.is_empty(), "default component_stable() is false: {d:?}");
    }

    #[test]
    fn recovery_accounting_fires_on_uncharged_restore_paths() {
        let src = "\
impl Cluster {
    fn restore_checkpoint(&mut self, cp: &Checkpoint) -> usize {
        self.inboxes = cp.inboxes.clone();
        cp.words()
    }
    fn recover_machine(&mut self, machine: usize) {
        self.charge_rounds(1);
        let _ = machine;
    }
    pub fn recovery_log(&self) -> usize {
        0
    }
}
pub fn retry_send(cluster: &mut Cluster) {
    let _ = cluster;
}
";
        let d = check_source(Path::new("x.rs"), src, &[Lint::RecoveryAccounting]);
        assert_eq!(d.len(), 2, "{d:?}");
        assert_eq!(d[0].line, 2);
        assert!(d[0].message.contains("restore_checkpoint"));
        assert_eq!(d[1].line, 14);
        assert!(d[1].message.contains("retry_send"));
    }

    #[test]
    fn recovery_accounting_ignores_non_cluster_impls() {
        // `&mut self` outside an inherent `impl Cluster` block is not
        // cluster state: MachineProgram::restore on a user program is free.
        let src = "\
impl MachineProgram for TreeSum {
    fn restore(&mut self, snapshot: &[u64]) {
        self.acc = snapshot[0];
    }
}
trait MachineProgram {
    fn restore(&mut self, snapshot: &[u64]) {
        let _ = snapshot;
    }
}
impl Display for Cluster {
    fn recover_name(&mut self) -> usize {
        0
    }
}
";
        let d = check_source(Path::new("x.rs"), src, &[Lint::RecoveryAccounting]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn recovery_accounting_accepts_advance_rounds_as_charge() {
        let src = "\
pub fn retry_with_backoff(cluster: &mut Cluster) -> Result<(), MpcError> {
    cluster.advance_rounds(1)
}
";
        let d = check_source(Path::new("x.rs"), src, &[Lint::RecoveryAccounting]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn determinism_flags_unordered_consumption() {
        let src = "\
fn racy(items: &[u64], total: &AtomicU64) {
    items.par_iter().for_each(|&x| {
        total.fetch_add(x, Ordering::Relaxed);
    });
}
";
        let d = check_source(Path::new("x.rs"), src, &[Lint::Determinism]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 2);
        assert!(d[0].message.contains("for_each"));
    }

    #[test]
    fn determinism_flags_collect_free_chain() {
        let src = "fn f(v: &[u64]) -> usize { v.par_iter().count() }\n";
        let d = check_source(Path::new("x.rs"), src, &[Lint::Determinism]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("collect"));
    }

    #[test]
    fn determinism_accepts_collected_chains() {
        let src = "\
fn doubled(v: Vec<u64>) -> Vec<u64> {
    v.into_par_iter().map(|x| x * 2).collect()
}
fn spread(v: &[u64]) -> Vec<u64> {
    v
        .par_iter()
        .map(|x| x * 2)
        .collect()
}
";
        let d = check_source(Path::new("x.rs"), src, &[Lint::Determinism]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn determinism_ignores_sequential_reduce_and_helpers() {
        // A plain iterator reduce and the approved par_map* helpers carry
        // none of the parallel tokens.
        let src = "\
fn fold(v: &[u64]) -> Option<u64> {
    v.iter().copied().reduce(|a, b| a + b)
}
fn swept(mode: ParallelismMode, v: &[u64]) -> Vec<u64> {
    par_map(mode, v, |_, x| x * 2)
}
";
        let d = check_source(Path::new("x.rs"), src, &[Lint::Determinism]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn hot_marked_functions_must_not_touch_ordered_maps() {
        let src = "\
// #[csmpc_hot]
fn ball_extent(&mut self, g: &Graph, v: usize) -> usize {
    let index: BTreeMap<u64, usize> = (0..4u64).map(|i| (i, 0)).collect();
    let mut seen = BTreeSet::new();
    seen.insert(0u64);
    index.len() + seen.len()
}
fn unmarked_helper() -> usize {
    let m: BTreeMap<u64, u64> = BTreeMap::new();
    m.len()
}
";
        let d = check_source(Path::new("x.rs"), src, &[Lint::Determinism]);
        assert_eq!(lines_of_test(&d), vec![3, 4], "{d:?}");
        assert!(d[0].message.contains("ball_extent"));
        assert!(d[0].message.contains("BTreeMap"));
        assert!(d[1].message.contains("BTreeSet"));
    }

    #[test]
    fn hot_marker_arm_is_suppressible_and_ignores_flat_bodies() {
        let src = "\
// #[csmpc_hot]
fn flat(&mut self, scratch: &mut Vec<u64>) -> usize {
    scratch.clear();
    scratch.len()
}
// #[csmpc_hot]
fn audited(&mut self) -> usize {
    // conformance: allow(determinism)
    let tmp = BTreeMap::from([(0u64, 1u64)]);
    tmp.len()
}
";
        let d = check_source(Path::new("x.rs"), src, &[Lint::Determinism]);
        assert!(d.is_empty(), "{d:?}");
    }

    fn lines_of_test(diags: &[Diagnostic]) -> Vec<usize> {
        diags.iter().map(|d| d.line).collect()
    }

    #[test]
    fn determinism_suppressible_like_any_lint() {
        let src = "\
// conformance: allow(determinism)
fn counted(v: &[u64]) -> usize { v.par_iter().count() }
";
        let d = check_source(Path::new("x.rs"), src, &[Lint::Determinism]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn lint_selection_by_path() {
        assert!(
            lints_for_path("crates/mpc/src/distributed.rs").contains(&Lint::UnaccountedPrimitive)
        );
        assert!(lints_for_path("crates/mpc/src/cluster.rs").contains(&Lint::RecoveryAccounting));
        assert!(lints_for_path("crates/mpc/src/faults.rs").contains(&Lint::RecoveryAccounting));
        assert!(!lints_for_path("crates/core/src/runner.rs").contains(&Lint::RecoveryAccounting));
        assert!(lints_for_path("crates/algorithms/src/luby.rs").contains(&Lint::Nondeterminism));
        assert!(!lints_for_path("crates/graph/src/graph.rs").contains(&Lint::Nondeterminism));
        assert!(lints_for_path("crates/graph/src/graph.rs").contains(&Lint::StabilityDiscipline));
        assert!(lints_for_path("crates/mpc/src/cluster.rs").contains(&Lint::Determinism));
        assert!(lints_for_path("crates/local/src/engine.rs").contains(&Lint::Determinism));
        assert!(lints_for_path("crates/parallel/src/lib.rs").contains(&Lint::Determinism));
        assert!(lints_for_path("crates/core/src/runner.rs").contains(&Lint::Determinism));
        // The graph crate joined the determinism roots with the hot-path
        // workspace kernels (`#[csmpc_hot]` allocation policing).
        assert!(lints_for_path("crates/graph/src/ball.rs").contains(&Lint::Determinism));
        assert!(!lints_for_path("crates/bench/src/bin/perf.rs").contains(&Lint::Determinism));
        // The job service is a determinism root (ordered collections,
        // bit-identical per-job outputs) but not a nondeterminism root:
        // wall-clock latency observability is legitimate there.
        assert!(lints_for_path("crates/service/src/scheduler.rs").contains(&Lint::Determinism));
        assert!(!lints_for_path("crates/service/src/scheduler.rs").contains(&Lint::Nondeterminism));
    }

    #[test]
    fn json_summary_is_well_formed() {
        let diagnostics = check_source(
            Path::new("a.rs"),
            "use std::time::Instant;\n",
            &[Lint::Nondeterminism],
        );
        let r = Report {
            diagnostics,
            files_scanned: 2,
        };
        let js = r.to_json();
        assert!(js.contains("\"violations\": 1"), "{js}");
        assert!(js.contains("\"line\": 1"), "{js}");
        assert!(js.contains("\"lint\": \"nondeterminism\""), "{js}");
    }

    #[test]
    fn run_all_lints_on_clean_source() {
        let src = "\
pub fn count(cluster: &mut Cluster) -> usize {
    cluster.charge_rounds(1);
    let m = std::collections::BTreeMap::<u64, u64>::new();
    m.len()
}
";
        let d = check_source(Path::new("x.rs"), src, ALL);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn lint_names_round_trip() {
        for &lint in Lint::ALL {
            assert_eq!(Lint::from_name(lint.name()), Some(lint));
        }
    }

    #[test]
    fn analyze_sources_runs_both_layers_and_normalizes() {
        // One file with a token-level finding (HashMap in a nondeterminism
        // root) and an interprocedural one (uncharged comm helper).
        let src = "\
use std::collections::HashMap;
pub fn leak(cluster: &mut Cluster) {
    raw(cluster);
    cluster.charge_rounds(1);
}
fn raw(cluster: &mut Cluster) {
    cluster.inboxes.swap(0, 1);
}
";
        let sources = vec![(PathBuf::from("crates/mpc/src/x.rs"), src.to_string())];
        let report = analyze_sources(&sources);
        let lints: Vec<Lint> = report.diagnostics.iter().map(|d| d.lint).collect();
        assert!(lints.contains(&Lint::Nondeterminism), "{report:?}");
        assert!(lints.contains(&Lint::ChargeFlow), "{report:?}");
        // Normalized: sorted by (file, line, lint).
        let keys: Vec<(String, usize, Lint)> = report
            .diagnostics
            .iter()
            .map(|d| (d.file.display().to_string(), d.line, d.lint))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn analyze_sources_honors_csmpc_allow_and_flags_unused() {
        let src = "\
pub fn leak(cluster: &mut Cluster) {
    cluster.charge_rounds(1);
    raw(cluster);
}
// csmpc-allow(charge-flow): fixture exercises the raw wire path on purpose
fn raw(cluster: &mut Cluster) {
    cluster.inboxes.swap(0, 1);
}
// csmpc-allow(par-closure-race): nothing here to suppress
fn idle() {}
";
        let sources = vec![(PathBuf::from("crates/mpc/src/x.rs"), src.to_string())];
        let report = analyze_sources(&sources);
        assert!(
            !report
                .diagnostics
                .iter()
                .any(|d| d.lint == Lint::ChargeFlow),
            "{report:?}"
        );
        let unused: Vec<&Diagnostic> = report
            .diagnostics
            .iter()
            .filter(|d| d.lint == Lint::UnusedSuppression)
            .collect();
        assert_eq!(unused.len(), 1, "{report:?}");
        assert_eq!(unused[0].line, 9);
    }

    #[test]
    fn sarif_output_is_parseable_and_complete() {
        let src = "use std::time::Instant;\n";
        let sources = vec![(PathBuf::from("crates/mpc/src/x.rs"), src.to_string())];
        let report = analyze_sources(&sources);
        assert!(!report.is_clean());
        let sarif = report.to_sarif();
        let doc = baseline::parse_json(&sarif).expect("SARIF must be valid JSON");
        let runs = doc.get("runs").expect("runs");
        let baseline::Json::Arr(runs) = runs else {
            panic!("runs not an array")
        };
        let results = runs[0].get("results").expect("results");
        let baseline::Json::Arr(results) = results else {
            panic!("results not an array")
        };
        assert_eq!(results.len(), report.diagnostics.len());
        assert_eq!(
            results[0].get("ruleId").and_then(baseline::Json::as_str),
            Some("nondeterminism")
        );
    }

    #[test]
    fn report_json_is_parseable_with_new_fields() {
        let report = Report {
            diagnostics: vec![Diagnostic {
                lint: Lint::ChargeFlow,
                severity: Severity::Error,
                file: PathBuf::from("a.rs"),
                line: 3,
                message: "m \"quoted\"".into(),
                witness: vec!["entry".into(), "helper".into()],
            }],
            files_scanned: 1,
        };
        let doc = baseline::parse_json(&report.to_json()).expect("valid JSON");
        let diags = doc.get("diagnostics").expect("diagnostics");
        let baseline::Json::Arr(diags) = diags else {
            panic!("not an array")
        };
        assert_eq!(
            diags[0].get("severity").and_then(baseline::Json::as_str),
            Some("error")
        );
        let witness = diags[0].get("witness").expect("witness");
        let baseline::Json::Arr(w) = witness else {
            panic!("witness not an array")
        };
        assert_eq!(w.len(), 2);
    }
}
