//! Interprocedural charge-flow pass (`charge-flow` lint).
//!
//! The token-level `unaccounted-primitive` and `recovery-accounting` lints
//! only see one function body: a charge delegated to a helper is a false
//! positive, and an uncharged *helper* driving the wire is a false
//! negative (helpers are private, so the `pub fn` token lint never looks
//! at them). This pass upgrades both to a transitive property over the
//! workspace call graph:
//!
//! > Every function that (a) mutates cluster state (`&mut Cluster` in its
//! > signature, or `&mut self` in an inherent `impl Cluster` block),
//! > (b) is reachable from an engine entry point (`run_program*`,
//! > `run_supervised`, `advance_rounds`, the public `&mut Cluster`
//! > primitive layer), and (c) touches communication/round machinery
//! > (directly or through a callee) must reach a `Stats` charge —
//! > directly or through a callee.
//!
//! "Touches communication machinery" means the body mentions a wire-level
//! identifier (inbox staging, envelope sealing, checkpoint shipping,
//! retransmission buffers) or calls a function that does. "Reaches a
//! charge" closes over `charge_rounds` / `charge_words` / `charge_storage`
//! / `charge_recovery` / `require_fits` the same way — so the fixture the
//! token lints provably miss (primitive call one function removed from an
//! uncharged entry point) is caught here with a call-chain witness.

use crate::callgraph::CallGraph;
use crate::syntax::FileModel;
use crate::{Diagnostic, Lint, Severity};

/// Direct `Stats`-charging calls.
const CHARGE_SINKS: &[&str] = &[
    "charge_rounds",
    "charge_words",
    "charge_storage",
    "charge_recovery",
    "charge_replay",
    "require_fits",
];

/// Wire-level identifiers: a body mentioning one of these moves messages,
/// rounds, or checkpoint state between machines.
const COMM_TOKENS: &[&str] = &[
    "inboxes",
    "seal",
    "transport_checksum",
    "transport_checksum_stream",
    "pending_retransmit",
    "partition_held",
    "retransmit",
];

/// Entry-point function names (beyond the public primitive layer).
/// `run_job` and `execute_attempt` are the `csmpc-service` scheduler
/// roots: every per-attempt execution path enters through them, so an
/// uncharged service-layer helper that reaches wire machinery is caught
/// even when it is private. `recover` and `replay_journal` are the
/// crash-recovery roots: journal replay re-executes in-flight attempts,
/// so any wire-touching helper it reaches must still land on a charge
/// (`charge_replay` closes the replay bookkeeping itself).
const ENTRY_NAMES: &[&str] = &[
    "run_program",
    "run_program_with_faults",
    "run_supervised",
    "advance_rounds",
    "run_job",
    "execute_attempt",
    "recover",
    "replay_journal",
];

/// `true` when the function's signature mutates cluster state.
fn mutates_cluster(fm: &FileModel, f: &crate::syntax::FnItem) -> bool {
    let flat = FileModel::flat_sig(f);
    flat.contains("&mutCluster") || (flat.contains("&mutself") && fm.in_inherent_cluster_impl(f))
}

/// Runs the pass over the parsed workspace.
#[must_use]
pub fn run(files: &[FileModel], graph: &CallGraph) -> Vec<Diagnostic> {
    let n = graph.nodes.len();
    let fn_of = |node: usize| {
        let id = graph.nodes[node];
        (&files[id.file], &files[id.file].fns[id.item])
    };

    let mut direct_charge = vec![false; n];
    let mut direct_comm = vec![false; n];
    let mut comm_why: Vec<Option<String>> = vec![None; n];
    let mut mutates = vec![false; n];
    let mut entry = Vec::new();
    for node in 0..n {
        let (fm, f) = fn_of(node);
        direct_charge[node] = f
            .calls
            .iter()
            .any(|c| CHARGE_SINKS.contains(&c.callee.as_str()));
        if let Some(tok) = fm
            .body_idents(f)
            .find(|t| COMM_TOKENS.contains(&t.text.as_str()))
        {
            direct_comm[node] = true;
            comm_why[node] = Some(tok.text.clone());
        }
        mutates[node] = mutates_cluster(fm, f);
        if !f.in_test && (ENTRY_NAMES.contains(&f.name.as_str()) || (f.is_pub && mutates[node])) {
            entry.push(node);
        }
    }
    let accounts = graph.transitive_down(&direct_charge);
    let comm = graph.transitive_down(&direct_comm);
    let reachable = graph.reachable_from(&entry);

    let mut out = Vec::new();
    for node in 0..n {
        let (fm, f) = fn_of(node);
        if f.in_test
            || f.body.is_none()
            || !reachable[node]
            || !mutates[node]
            || !comm[node]
            || accounts[node]
        {
            continue;
        }
        // Witness: entry chain down to this function, then the chain from
        // here to the wire-touching body.
        let name_of = |m: usize| fn_of(m).1.name.clone();
        let mut witness: Vec<String> = graph
            .chain_from_seeds(&entry, node)
            .unwrap_or_else(|| vec![node])
            .iter()
            .map(|&m| name_of(m))
            .collect();
        let comm_site = graph
            .witness_chain(node, &direct_comm)
            .unwrap_or_else(|| vec![node]);
        for &m in comm_site.iter().skip(1) {
            witness.push(name_of(m));
        }
        let via = comm_site
            .last()
            .and_then(|&m| comm_why[m].clone())
            .unwrap_or_else(|| "communication machinery".to_string());
        out.push(Diagnostic {
            lint: Lint::ChargeFlow,
            severity: Severity::Error,
            file: fm.path.clone(),
            line: f.line,
            message: format!(
                "`{}` mutates cluster state and touches communication machinery (via `{via}`) \
                 but no path from it reaches a Stats charge \
                 (charge_rounds/charge_words/charge_storage/charge_recovery/charge_replay/\
                 require_fits); \
                 unaccounted wire traffic breaks the S = n^phi cost model",
                f.name
            ),
            witness,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::parse_file;
    use std::path::Path;

    fn run_src(src: &str) -> Vec<Diagnostic> {
        let files = vec![parse_file(Path::new("x.rs").to_path_buf(), src)];
        let graph = CallGraph::build(&files);
        run(&files, &graph)
    }

    #[test]
    fn charge_via_helper_is_clean() {
        // The token lint would flag `counted` (no charge token in its own
        // body); the flow pass follows the call.
        let src = "\
pub fn counted(cluster: &mut Cluster) {
    stage(cluster);
    account(cluster);
}
fn stage(cluster: &mut Cluster) {
    cluster.inboxes.sort();
    account(cluster);
}
fn account(cluster: &mut Cluster) {
    cluster.charge_rounds(1);
}
";
        assert!(run_src(src).is_empty(), "{:?}", run_src(src));
    }

    #[test]
    fn uncharged_helper_one_call_deep_is_caught() {
        // `outer` charges for itself, but the private helper moves words
        // on the wire with no charge on any path — the case the token
        // lint provably misses (it only sees `pub fn` bodies).
        let src = "\
pub fn outer(cluster: &mut Cluster) {
    cluster.charge_rounds(1);
    raw_shuffle(cluster);
}
fn raw_shuffle(cluster: &mut Cluster) {
    cluster.inboxes.swap(0, 1);
}
";
        let d = run_src(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].lint, Lint::ChargeFlow);
        assert!(d[0].message.contains("raw_shuffle"));
        assert_eq!(d[0].witness, vec!["outer", "raw_shuffle"]);
    }

    #[test]
    fn unreachable_and_comm_free_helpers_are_ignored() {
        let src = "\
fn dead_code(cluster: &mut Cluster) {
    cluster.inboxes.clear();
}
pub fn setter(cluster: &mut Cluster) {
    cluster.plan = None;
}
";
        // `dead_code` is not reachable from any entry; `setter` never
        // touches comm machinery.
        assert!(run_src(src).is_empty(), "{:?}", run_src(src));
    }

    #[test]
    fn inherent_cluster_methods_are_covered() {
        let src = "\
impl Cluster {
    pub fn resend(&mut self) {
        self.flush_stale();
    }
    fn flush_stale(&mut self) {
        self.pending_retransmit.clear();
    }
}
";
        let d = run_src(src);
        assert_eq!(d.len(), 2, "resend and flush_stale both uncharged: {d:?}");
        assert!(d.iter().any(|x| x.message.contains("flush_stale")));
    }
}
