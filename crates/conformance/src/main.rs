//! `conformance` — run the full static analysis engine (token lints +
//! interprocedural passes) over the workspace.
//!
//! ```text
//! conformance [--format text|json|sarif] [--baseline FILE]
//!             [--write-baseline FILE] [--sarif-out FILE] [ROOT]
//! ```
//!
//! * `ROOT` — workspace root (defaults to the nearest ancestor of the
//!   current directory containing a `crates/` subdirectory).
//! * `--format` — primary-output format on stdout (`text` default);
//!   `--json` is shorthand for `--format json`.
//! * `--baseline FILE` — only findings *not* listed in the baseline fail
//!   the run; baselined findings are counted but not fatal.
//! * `--write-baseline FILE` — write a baseline accepting every current
//!   finding, then exit successfully.
//! * `--sarif-out FILE` — additionally write a SARIF 2.1.0 log (for CI
//!   artifact upload), independent of `--format`.
//!
//! Exit status distinguishes findings from breakage: `0` clean (or all
//! findings baselined), `1` new findings, `2` usage/I/O/baseline-parse
//! errors.

use std::path::PathBuf;
use std::process::ExitCode;

use csmpc_conformance::baseline::Baseline;
use csmpc_conformance::{analyze_workspace, Report};

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
    Sarif,
}

struct Options {
    format: Format,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    sarif_out: Option<PathBuf>,
    root: Option<PathBuf>,
}

fn usage() {
    println!(
        "usage: conformance [--format text|json|sarif] [--baseline FILE]\n\
         \x20                  [--write-baseline FILE] [--sarif-out FILE] [ROOT]\n\
         \n\
         Static model-conformance analysis: token lints (nondeterminism,\n\
         unaccounted-primitive, recovery-accounting, stability-discipline,\n\
         determinism) plus interprocedural passes (charge-flow,\n\
         par-closure-race, stability-flow) and suppression hygiene\n\
         (unused-suppression).\n\
         \n\
         Suppress a finding with `// csmpc-allow(<lint>): <reason>` on the\n\
         same or the preceding line.\n\
         \n\
         Exit codes: 0 clean / all findings baselined, 1 new findings,\n\
         2 internal or usage error."
    );
}

fn parse_args() -> Result<Option<Options>, String> {
    let mut opts = Options {
        format: Format::Text,
        baseline: None,
        write_baseline: None,
        sarif_out: None,
        root: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => return Ok(None),
            "--json" => opts.format = Format::Json,
            "--format" => {
                let v = args.next().ok_or("--format needs a value")?;
                opts.format = match v.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    "sarif" => Format::Sarif,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            "--baseline" => {
                let v = args.next().ok_or("--baseline needs a file path")?;
                opts.baseline = Some(PathBuf::from(v));
            }
            "--write-baseline" => {
                let v = args.next().ok_or("--write-baseline needs a file path")?;
                opts.write_baseline = Some(PathBuf::from(v));
            }
            "--sarif-out" => {
                let v = args.next().ok_or("--sarif-out needs a file path")?;
                opts.sarif_out = Some(PathBuf::from(v));
            }
            _ if arg.starts_with('-') => return Err(format!("unknown flag: {arg}")),
            _ => opts.root = Some(PathBuf::from(arg)),
        }
    }
    Ok(Some(opts))
}

fn find_root(start: PathBuf) -> Option<PathBuf> {
    let mut dir = start;
    loop {
        if dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn emit(report: &Report, opts: &Options, new: &[&csmpc_conformance::Diagnostic], baselined: usize) {
    match opts.format {
        Format::Json => println!("{}", report.to_json()),
        Format::Sarif => println!("{}", report.to_sarif()),
        Format::Text => {
            for d in new {
                println!("{d}");
            }
            let mut summary = format!(
                "conformance: {} finding(s) across {} file(s) scanned",
                report.diagnostics.len(),
                report.files_scanned
            );
            if opts.baseline.is_some() {
                summary.push_str(&format!(" ({} baselined, {} new)", baselined, new.len()));
            }
            println!("{summary}");
        }
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(Some(o)) => o,
        Ok(None) => {
            usage();
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("conformance: {msg}");
            return ExitCode::from(2);
        }
    };
    let root = match opts.root.clone() {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match find_root(cwd) {
                Some(r) => r,
                None => {
                    eprintln!("conformance: no `crates/` directory found above the current dir");
                    return ExitCode::from(2);
                }
            }
        }
    };
    let report = match analyze_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("conformance: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if let Some(path) = &opts.write_baseline {
        let text = Baseline::render(&report);
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("conformance: cannot write baseline {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "conformance: wrote baseline {} accepting {} finding(s)",
            path.display(),
            report.diagnostics.len()
        );
        return ExitCode::SUCCESS;
    }
    let base = match &opts.baseline {
        None => Baseline::empty(),
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("conformance: cannot read baseline {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            match Baseline::parse(&text) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("conformance: {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
        }
    };
    let (new, baselined) = base.split(&report.diagnostics);
    if let Some(path) = &opts.sarif_out {
        if let Err(e) = std::fs::write(path, report.to_sarif()) {
            eprintln!("conformance: cannot write SARIF {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    emit(&report, &opts, &new, baselined.len());
    if new.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
