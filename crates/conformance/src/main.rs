//! `conformance` — run the static model-conformance lints over the
//! workspace.
//!
//! ```text
//! conformance [--json] [ROOT]
//! ```
//!
//! * `ROOT` — workspace root (defaults to the nearest ancestor of the
//!   current directory containing a `crates/` subdirectory).
//! * `--json` — emit the machine-readable summary instead of plain text.
//!
//! Exit status: `0` when the workspace is clean, `1` when any lint fired,
//! `2` on usage or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

use csmpc_conformance::check_workspace;

fn find_root(start: PathBuf) -> Option<PathBuf> {
    let mut dir = start;
    loop {
        if dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut json = false;
    let mut root_arg: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--help" | "-h" => {
                println!("usage: conformance [--json] [ROOT]");
                println!("Static model-conformance lints: nondeterminism,");
                println!("unaccounted-primitive, recovery-accounting,");
                println!("stability-discipline.");
                return ExitCode::SUCCESS;
            }
            _ if arg.starts_with('-') => {
                eprintln!("unknown flag: {arg}");
                return ExitCode::from(2);
            }
            _ => root_arg = Some(PathBuf::from(arg)),
        }
    }
    let root = match root_arg {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match find_root(cwd) {
                Some(r) => r,
                None => {
                    eprintln!("conformance: no `crates/` directory found above the current dir");
                    return ExitCode::from(2);
                }
            }
        }
    };
    let report = match check_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("conformance: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if json {
        println!("{}", report.to_json());
    } else {
        for d in &report.diagnostics {
            println!("{d}");
        }
        println!(
            "conformance: {} violation(s) across {} file(s) scanned",
            report.diagnostics.len(),
            report.files_scanned
        );
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
