//! Inline suppression handling: `// csmpc-allow(<lint>): <reason>`.
//!
//! A suppression on line *L* silences findings of the named lint on line
//! *L* (trailing comment) or line *L + 1* (comment-above style) of the
//! same file. `csmpc-allow(all): <reason>` silences every lint at the
//! location. Suppressions are expected to carry a reason — the reason is
//! the reviewable artifact — and a suppression that silences nothing is
//! itself a finding ([`crate::Lint::UnusedSuppression`]), so stale
//! annotations cannot accumulate after the code they excused is fixed.
//!
//! The legacy `// conformance: allow(<lint>)` spelling is still honored by
//! the token-level lints (see [`crate::check_source`]) but does not
//! participate in unused-suppression detection; new annotations should use
//! `csmpc-allow`.

use crate::{Diagnostic, Lint, Severity};
use std::path::Path;

/// One parsed `csmpc-allow` annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// 1-indexed line the annotation sits on.
    pub line: usize,
    /// The lint name as written (`"all"` allowed).
    pub lint_name: String,
    /// Parsed lint; `None` for `all` or an unknown name.
    pub lint: Option<Lint>,
    /// The reason text after the colon (may be empty if omitted).
    pub reason: String,
}

impl Suppression {
    /// `true` when this annotation silences `lint` at `line`.
    #[must_use]
    pub fn covers(&self, lint: Lint, line: usize) -> bool {
        let lint_ok = self.lint_name == "all" || self.lint == Some(lint);
        // Never let a suppression swallow the unused-suppression meta-lint.
        lint_ok && lint != Lint::UnusedSuppression && (line == self.line || line == self.line + 1)
    }
}

/// Extracts all `csmpc-allow` annotations from a per-line comment table
/// (index 0 = line 1).
///
/// Only plain `//` comments count: doc comments (`///`, `//!`) are
/// documentation, not annotations, so prose *describing* the suppression
/// syntax (like this module's own docs) never suppresses anything.
#[must_use]
pub fn parse_suppressions(comments: &[String]) -> Vec<Suppression> {
    const MARKER: &str = "csmpc-allow(";
    let mut out = Vec::new();
    for (idx, comment) in comments.iter().enumerate() {
        let trimmed = comment.trim_start();
        if trimmed.starts_with("///") || trimmed.starts_with("//!") {
            continue;
        }
        let mut rest = comment.as_str();
        while let Some(pos) = rest.find(MARKER) {
            let after = &rest[pos + MARKER.len()..];
            let Some(close) = after.find(')') else { break };
            let lint_name = after[..close].trim().to_string();
            let tail = &after[close + 1..];
            let reason = tail
                .strip_prefix(':')
                .map(|r| {
                    // Reason runs to the next annotation on the line, if any.
                    let end = r.find(MARKER).unwrap_or(r.len());
                    r[..end].trim_end_matches("//").trim().to_string()
                })
                .unwrap_or_default();
            out.push(Suppression {
                line: idx + 1,
                lint: Lint::from_name(&lint_name),
                lint_name,
                reason,
            });
            rest = tail;
        }
    }
    out
}

/// Filters `findings` (all belonging to the file whose comment table and
/// path are given) through the file's `csmpc-allow` annotations, then
/// appends one [`Lint::UnusedSuppression`] finding per annotation that
/// silenced nothing (or names an unknown lint).
#[must_use]
pub fn apply(path: &Path, comments: &[String], findings: Vec<Diagnostic>) -> Vec<Diagnostic> {
    let sups = parse_suppressions(comments);
    let mut used = vec![false; sups.len()];
    let mut kept = Vec::new();
    for d in findings {
        let mut suppressed = false;
        for (i, s) in sups.iter().enumerate() {
            if s.covers(d.lint, d.line) {
                used[i] = true;
                suppressed = true;
            }
        }
        if !suppressed {
            kept.push(d);
        }
    }
    for (i, s) in sups.iter().enumerate() {
        if used[i] {
            continue;
        }
        let message = if s.lint.is_none() && s.lint_name != "all" {
            format!(
                "csmpc-allow names unknown lint `{}`; it suppresses nothing (known lints: \
                 see `Lint::from_name`)",
                s.lint_name
            )
        } else {
            format!(
                "unused suppression `csmpc-allow({})`: no {} finding on this or the next \
                 line — remove the annotation",
                s.lint_name,
                if s.lint_name == "all" {
                    "lint"
                } else {
                    s.lint_name.as_str()
                },
            )
        };
        kept.push(Diagnostic {
            lint: Lint::UnusedSuppression,
            severity: Severity::Warning,
            file: path.to_path_buf(),
            line: s.line,
            message,
            witness: Vec::new(),
        });
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn comments(pairs: &[(usize, &str)]) -> Vec<String> {
        let max = pairs.iter().map(|&(l, _)| l).max().unwrap_or(1);
        let mut out = vec![String::new(); max];
        for &(l, text) in pairs {
            out[l - 1] = text.to_string();
        }
        out
    }

    fn finding(lint: Lint, line: usize) -> Diagnostic {
        Diagnostic {
            lint,
            severity: Severity::Error,
            file: PathBuf::from("x.rs"),
            line,
            message: "m".into(),
            witness: Vec::new(),
        }
    }

    #[test]
    fn parse_extracts_lint_and_reason() {
        let c = comments(&[(
            3,
            "// csmpc-allow(par-closure-race): thread-local workspace",
        )]);
        let s = parse_suppressions(&c);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].line, 3);
        assert_eq!(s[0].lint, Some(Lint::ParClosureRace));
        assert_eq!(s[0].reason, "thread-local workspace");
    }

    #[test]
    fn same_line_and_next_line_are_covered() {
        let c = comments(&[(2, "// csmpc-allow(charge-flow): setup-only path")]);
        let kept = apply(
            Path::new("x.rs"),
            &c,
            vec![finding(Lint::ChargeFlow, 2), finding(Lint::ChargeFlow, 3)],
        );
        assert!(kept.is_empty(), "{kept:?}");
    }

    #[test]
    fn wrong_lint_or_far_line_is_not_covered() {
        let c = comments(&[(2, "// csmpc-allow(charge-flow): reason")]);
        let kept = apply(
            Path::new("x.rs"),
            &c,
            vec![
                finding(Lint::ParClosureRace, 2),
                finding(Lint::ChargeFlow, 5),
            ],
        );
        // Both findings survive, and the suppression is reported unused.
        assert_eq!(kept.len(), 3, "{kept:?}");
        assert!(kept
            .iter()
            .any(|d| d.lint == Lint::UnusedSuppression && d.line == 2));
    }

    #[test]
    fn allow_all_covers_everything_once() {
        let c = comments(&[(1, "// csmpc-allow(all): fixture scaffolding")]);
        let kept = apply(
            Path::new("x.rs"),
            &c,
            vec![
                finding(Lint::Nondeterminism, 1),
                finding(Lint::ChargeFlow, 2),
            ],
        );
        assert!(kept.is_empty(), "{kept:?}");
    }

    #[test]
    fn doc_comments_are_not_annotations() {
        let c = comments(&[
            (
                1,
                "/// Write `// csmpc-allow(charge-flow): why` to suppress.",
            ),
            (2, "//! Mentions csmpc-allow(all): in module docs."),
        ]);
        assert!(parse_suppressions(&c).is_empty());
    }

    #[test]
    fn unknown_lint_is_reported() {
        let c = comments(&[(4, "// csmpc-allow(no-such-lint): oops")]);
        let kept = apply(Path::new("x.rs"), &c, Vec::new());
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].lint, Lint::UnusedSuppression);
        assert!(kept[0].message.contains("unknown lint"));
    }

    #[test]
    fn unused_suppression_cannot_suppress_itself() {
        let c = comments(&[
            (1, "// csmpc-allow(unused-suppression): nice try"),
            (2, "// csmpc-allow(charge-flow): also unused"),
        ]);
        let kept = apply(Path::new("x.rs"), &c, Vec::new());
        assert_eq!(kept.len(), 2, "{kept:?}");
        assert!(kept.iter().all(|d| d.lint == Lint::UnusedSuppression));
    }
}
