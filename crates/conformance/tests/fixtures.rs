//! The acceptance tests for the static analyzer: every seeded violation in
//! `fixtures/` is caught at its exact `file:line`, suppressions hold, and
//! clean constructs stay clean.

use std::path::Path;

use csmpc_conformance::{check_source, Diagnostic, Lint};

fn scan_fixture(name: &str, lints: &[Lint]) -> Vec<Diagnostic> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    let source =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {name} unreadable: {e}"));
    check_source(Path::new(name), &source, lints)
}

fn lines_of(diags: &[Diagnostic]) -> Vec<usize> {
    diags.iter().map(|d| d.line).collect()
}

#[test]
fn nondeterminism_fixture_caught_at_exact_lines() {
    let diags = scan_fixture("nondeterminism_violation.rs", &[Lint::Nondeterminism]);
    assert_eq!(lines_of(&diags), vec![4, 5, 8, 9], "{diags:#?}");
    assert!(diags.iter().all(|d| d.lint == Lint::Nondeterminism));
    assert!(diags[0].message.contains("HashMap"));
    assert!(diags[1].message.contains("Instant"));
    // The diagnostic carries the file for file:line reporting.
    assert_eq!(
        diags[0].to_string(),
        format!(
            "nondeterminism_violation.rs:4: [nondeterminism] {}",
            diags[0].message
        )
    );
}

#[test]
fn unaccounted_fixture_caught_at_exact_lines() {
    let diags = scan_fixture("unaccounted_primitive.rs", &[Lint::UnaccountedPrimitive]);
    assert_eq!(lines_of(&diags), vec![17, 23], "{diags:#?}");
    assert!(diags[0].message.contains("leak_degree_sum"));
    assert!(diags[1].message.contains("leak_labels"));
}

#[test]
fn recovery_accounting_fixture_caught_at_exact_lines() {
    let diags = scan_fixture("recovery_accounting.rs", &[Lint::RecoveryAccounting]);
    assert_eq!(lines_of(&diags), vec![15, 27, 56, 64], "{diags:#?}");
    assert!(diags[0].message.contains("recover_silently"));
    assert!(diags[1].message.contains("retry_lost_messages"));
    // The supervision-era recovery paths are covered too: an uncharged
    // quarantine and an uncharged backoff are flagged, while the
    // `charge_recovery`-accounted speculation stays clean.
    assert!(diags[2].message.contains("quarantine_machine"));
    assert!(diags[3].message.contains("backoff_before_retry"));
    assert!(!diags
        .iter()
        .any(|d| d.message.contains("speculate_straggler")));
}

#[test]
fn stability_fixture_caught_at_exact_lines() {
    let diags = scan_fixture("stability_discipline.rs", &[Lint::StabilityDiscipline]);
    assert_eq!(lines_of(&diags), vec![24, 25, 26], "{diags:#?}");
    assert!(diags[0].message.contains("aggregate"));
    assert!(diags[1].message.contains("name"));
    assert!(diags[2].message.contains("broadcast"));
}

#[test]
fn determinism_fixture_caught_at_exact_lines() {
    let diags = scan_fixture("determinism_violation.rs", &[Lint::Determinism]);
    assert_eq!(lines_of(&diags), vec![11, 18], "{diags:#?}");
    assert!(diags[0].message.contains("for_each"));
    assert!(diags[1].message.contains("collect"));
}

#[test]
fn hot_path_allocation_fixture_caught_at_exact_lines() {
    let diags = scan_fixture("hot_path_allocation.rs", &[Lint::Determinism]);
    assert_eq!(lines_of(&diags), vec![12, 13], "{diags:#?}");
    assert!(diags[0].message.contains("ball_extent"));
    assert!(diags[0].message.contains("BTreeMap"));
    assert!(diags[1].message.contains("BTreeSet"));
    // The flat-buffer hot function, the unmarked map builder, and the
    // suppressed audited construction all stay clean.
    assert!(!diags.iter().any(|d| d.message.contains("flat_extent")));
    assert!(!diags.iter().any(|d| d.message.contains("grouped")));
    assert!(!diags.iter().any(|d| d.line > 30), "suppression holds");
}

#[test]
fn fixtures_stay_silent_for_other_lints() {
    // Each fixture seeds exactly one lint; cross-checking guards against
    // over-eager matching.
    assert!(scan_fixture("nondeterminism_violation.rs", &[Lint::StabilityDiscipline]).is_empty());
    assert!(scan_fixture("unaccounted_primitive.rs", &[Lint::Nondeterminism]).is_empty());
    assert!(scan_fixture("stability_discipline.rs", &[Lint::Nondeterminism]).is_empty());
    assert!(scan_fixture("stability_discipline.rs", &[Lint::UnaccountedPrimitive]).is_empty());
    assert!(scan_fixture("recovery_accounting.rs", &[Lint::Nondeterminism]).is_empty());
    assert!(scan_fixture("recovery_accounting.rs", &[Lint::StabilityDiscipline]).is_empty());
    assert!(scan_fixture("unaccounted_primitive.rs", &[Lint::RecoveryAccounting]).is_empty());
    assert!(scan_fixture("determinism_violation.rs", &[Lint::Nondeterminism]).is_empty());
    assert!(scan_fixture("hot_path_allocation.rs", &[Lint::Nondeterminism]).is_empty());
    assert!(scan_fixture("hot_path_allocation.rs", &[Lint::StabilityDiscipline]).is_empty());
}
