//! The acceptance tests for the static analyzer: every seeded violation in
//! `fixtures/` is caught at its exact `file:line`, suppressions hold, and
//! clean constructs stay clean.

use std::path::{Path, PathBuf};

use csmpc_conformance::{analyze_sources, check_source, Diagnostic, Lint, Severity};

fn read_fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {name} unreadable: {e}"))
}

fn scan_fixture(name: &str, lints: &[Lint]) -> Vec<Diagnostic> {
    let source = read_fixture(name);
    check_source(Path::new(name), &source, lints)
}

/// Runs the full engine (token lints + interprocedural passes +
/// suppressions) over one fixture, as `analyze_workspace` would.
fn analyze_fixture(name: &str) -> Vec<Diagnostic> {
    let sources = vec![(PathBuf::from(name), read_fixture(name))];
    analyze_sources(&sources).diagnostics
}

fn lines_of(diags: &[Diagnostic]) -> Vec<usize> {
    diags.iter().map(|d| d.line).collect()
}

#[test]
fn nondeterminism_fixture_caught_at_exact_lines() {
    let diags = scan_fixture("nondeterminism_violation.rs", &[Lint::Nondeterminism]);
    assert_eq!(lines_of(&diags), vec![4, 5, 8, 9], "{diags:#?}");
    assert!(diags.iter().all(|d| d.lint == Lint::Nondeterminism));
    assert!(diags[0].message.contains("HashMap"));
    assert!(diags[1].message.contains("Instant"));
    // The diagnostic carries the file and severity for file:line reporting.
    assert_eq!(
        diags[0].to_string(),
        format!(
            "nondeterminism_violation.rs:4: error [nondeterminism] {}",
            diags[0].message
        )
    );
}

#[test]
fn unaccounted_fixture_caught_at_exact_lines() {
    let diags = scan_fixture("unaccounted_primitive.rs", &[Lint::UnaccountedPrimitive]);
    assert_eq!(lines_of(&diags), vec![17, 23], "{diags:#?}");
    assert!(diags[0].message.contains("leak_degree_sum"));
    assert!(diags[1].message.contains("leak_labels"));
}

#[test]
fn recovery_accounting_fixture_caught_at_exact_lines() {
    let diags = scan_fixture("recovery_accounting.rs", &[Lint::RecoveryAccounting]);
    assert_eq!(lines_of(&diags), vec![15, 27, 56, 64], "{diags:#?}");
    assert!(diags[0].message.contains("recover_silently"));
    assert!(diags[1].message.contains("retry_lost_messages"));
    // The supervision-era recovery paths are covered too: an uncharged
    // quarantine and an uncharged backoff are flagged, while the
    // `charge_recovery`-accounted speculation stays clean.
    assert!(diags[2].message.contains("quarantine_machine"));
    assert!(diags[3].message.contains("backoff_before_retry"));
    assert!(!diags
        .iter()
        .any(|d| d.message.contains("speculate_straggler")));
}

#[test]
fn stability_fixture_caught_at_exact_lines() {
    let diags = scan_fixture("stability_discipline.rs", &[Lint::StabilityDiscipline]);
    assert_eq!(lines_of(&diags), vec![24, 25, 26], "{diags:#?}");
    assert!(diags[0].message.contains("aggregate"));
    assert!(diags[1].message.contains("name"));
    assert!(diags[2].message.contains("broadcast"));
}

#[test]
fn determinism_fixture_caught_at_exact_lines() {
    let diags = scan_fixture("determinism_violation.rs", &[Lint::Determinism]);
    assert_eq!(lines_of(&diags), vec![11, 18], "{diags:#?}");
    assert!(diags[0].message.contains("for_each"));
    assert!(diags[1].message.contains("collect"));
}

#[test]
fn hot_path_allocation_fixture_caught_at_exact_lines() {
    let diags = scan_fixture("hot_path_allocation.rs", &[Lint::Determinism]);
    assert_eq!(lines_of(&diags), vec![12, 13], "{diags:#?}");
    assert!(diags[0].message.contains("ball_extent"));
    assert!(diags[0].message.contains("BTreeMap"));
    assert!(diags[1].message.contains("BTreeSet"));
    // The flat-buffer hot function, the unmarked map builder, and the
    // suppressed audited construction all stay clean.
    assert!(!diags.iter().any(|d| d.message.contains("flat_extent")));
    assert!(!diags.iter().any(|d| d.message.contains("grouped")));
    assert!(!diags.iter().any(|d| d.line > 30), "suppression holds");
}

#[test]
fn route_scatter_fixture_caught_on_both_arms() {
    // The scatter-path pair: an uncharged scatter helper one private call
    // below a charged entry point (charge-flow arm) and a hot-marked
    // grouping pass allocating an ordered map per round (determinism arm).
    let diags = analyze_fixture("route_scatter_violation.rs");
    let charge: Vec<_> = diags
        .iter()
        .filter(|d| d.lint == Lint::ChargeFlow)
        .collect();
    assert_eq!(charge.len(), 1, "{diags:#?}");
    assert_eq!(charge[0].witness, vec!["route_round", "scatter_staged"]);
    assert!(charge[0].message.contains("inboxes"));
    assert!(diags.iter().all(|d| d.severity == Severity::Error));
    // The determinism arm is path-scoped in the full engine, so scan it
    // directly: the hot-marked grouping pass is flagged per ordered-map
    // mention.
    let hot = scan_fixture("route_scatter_violation.rs", &[Lint::Determinism]);
    assert!(!hot.is_empty(), "{hot:#?}");
    assert!(hot.iter().all(|d| d.message.contains("BTreeMap")));
    assert!(hot[0].message.contains("group_by_destination"));
}

#[test]
fn route_scatter_clean_fixture_stays_clean() {
    // The shipped shape: scatter helper charges for the words it moves,
    // hot grouping pass sticks to flat histogram/cursor spines.
    assert!(
        analyze_fixture("route_scatter_clean.rs").is_empty(),
        "{:#?}",
        analyze_fixture("route_scatter_clean.rs")
    );
    let hot = scan_fixture("route_scatter_clean.rs", &[Lint::Determinism]);
    assert!(hot.is_empty(), "{hot:#?}");
}

#[test]
fn charge_flow_fixture_caught_with_witness_chains() {
    let diags = analyze_fixture("charge_flow_violation.rs");
    assert!(
        diags.iter().all(|d| d.lint == Lint::ChargeFlow),
        "{diags:#?}"
    );
    assert_eq!(lines_of(&diags), vec![16, 30, 35], "{diags:#?}");
    // The acceptance case: the wire touch is one private call removed from
    // the charged entry point, with the delegation chain as witness.
    assert_eq!(diags[0].witness, vec!["shuffle_round", "raw_shuffle"]);
    assert!(diags[0].message.contains("inboxes"));
    // Two levels of delegation still produce a full entry-to-wire chain.
    assert_eq!(
        diags[1].witness,
        vec!["resend_round", "stage_resend", "drain_retransmit"]
    );
    assert!(diags.iter().all(|d| d.severity == Severity::Error));
}

#[test]
fn service_charge_flow_fixture_caught_through_private_scheduler_entries() {
    // `run_job` / `execute_attempt` are private: only the service-layer
    // entry-name extension makes the flow pass root a search at them.
    let diags = analyze_fixture("service_charge_flow_violation.rs");
    assert!(
        diags.iter().all(|d| d.lint == Lint::ChargeFlow),
        "{diags:#?}"
    );
    assert_eq!(lines_of(&diags), vec![8, 14, 22, 28, 33], "{diags:#?}");
    // The attempt runner's wire touch is witnessed down to the helper.
    assert_eq!(
        diags[0].witness,
        vec!["execute_attempt", "drain_stale_inboxes"]
    );
    // The dispatcher's uncharged retransmission is two calls removed.
    assert_eq!(
        diags[2].witness,
        vec!["run_job", "requeue_lost", "push_retransmit"]
    );
    assert!(diags.iter().all(|d| d.severity == Severity::Error));
}

#[test]
fn service_charge_flow_clean_fixture_stays_clean() {
    // Charges live inside the wire-touching helpers, so every delegation
    // chain accounts; communication-free bookkeeping owes nothing.
    assert!(
        analyze_fixture("service_charge_flow_clean.rs").is_empty(),
        "{:#?}",
        analyze_fixture("service_charge_flow_clean.rs")
    );
}

#[test]
fn journal_replay_fixture_caught_through_recovery_roots() {
    // `recover` / `replay_journal` are private crash-recovery roots:
    // only the recovery entry-name extension makes the flow pass root a
    // search at them.
    let flow = analyze_fixture("journal_replay_violation.rs");
    assert!(flow.iter().all(|d| d.lint == Lint::ChargeFlow), "{flow:#?}");
    assert_eq!(lines_of(&flow), vec![8, 15, 23, 29, 34], "{flow:#?}");
    // The recovery root's wire touch is witnessed down to the helper.
    assert_eq!(flow[0].witness, vec!["recover", "rebuild_inflight"]);
    // The replay root's uncharged restage is two calls removed.
    assert_eq!(
        flow[2].witness,
        vec!["replay_journal", "requeue_torn_tail", "restage_frame"]
    );
    assert!(flow.iter().all(|d| d.severity == Severity::Error));
    // The `replay` keyword also puts the roots on the token lint's
    // radar, one diagnostic per uncharged replay-named mutator.
    let token = scan_fixture("journal_replay_violation.rs", &[Lint::RecoveryAccounting]);
    assert_eq!(lines_of(&token), vec![8, 23], "{token:#?}");
    assert!(token[0].message.contains("recover"));
    assert!(token[1].message.contains("replay_journal"));
}

#[test]
fn journal_replay_clean_fixture_stays_clean() {
    // `charge_replay` is a recognized charge sink, so replay paths that
    // charge the frames they re-read satisfy both lints.
    assert!(
        analyze_fixture("journal_replay_clean.rs").is_empty(),
        "{:#?}",
        analyze_fixture("journal_replay_clean.rs")
    );
}

#[test]
fn charge_flow_clean_fixture_stays_clean() {
    // Charges delegated one and two helpers down, plus a communication-free
    // setter: the flow pass follows the calls the token lints cannot.
    assert!(
        analyze_fixture("charge_flow_clean.rs").is_empty(),
        "{:#?}",
        analyze_fixture("charge_flow_clean.rs")
    );
}

#[test]
fn par_race_fixture_caught_at_exact_lines() {
    let diags = analyze_fixture("par_race_violation.rs");
    assert!(
        diags.iter().all(|d| d.lint == Lint::ParClosureRace),
        "{diags:#?}"
    );
    assert_eq!(lines_of(&diags), vec![7, 18, 19, 29], "{diags:#?}");
    assert!(diags[0].message.contains("borrow_mut"), "{diags:#?}");
    assert!(diags[1].message.contains("seen.push"), "{diags:#?}");
    assert!(diags[2].message.contains("total"), "{diags:#?}");
    assert!(diags[3].message.contains("HashMap"), "{diags:#?}");
    // Every finding names the parallel entry point it came through.
    assert!(diags
        .iter()
        .all(|d| d.witness.iter().any(|w| w.contains("par_map"))));
}

#[test]
fn par_race_clean_fixture_stays_clean_including_allow() {
    // Pure maps, own-item mutation in `par_map_mut`, and an annotated
    // thread-local-workspace call: no findings, and the `csmpc-allow` is
    // consumed (no unused-suppression either).
    assert!(
        analyze_fixture("par_race_clean.rs").is_empty(),
        "{:#?}",
        analyze_fixture("par_race_clean.rs")
    );
}

#[test]
fn stability_flow_fixture_caught_at_impl_lines() {
    let diags = analyze_fixture("stability_flow_violation.rs");
    assert!(
        diags.iter().all(|d| d.lint == Lint::StabilityFlow),
        "{diags:#?}"
    );
    assert_eq!(lines_of(&diags), vec![19, 29], "{diags:#?}");
    // Implicit stability claim: provenance reached, default inherited.
    assert_eq!(diags[0].severity, Severity::Warning);
    assert!(diags[0].message.contains("SilentDefault"));
    assert_eq!(diags[0].witness, vec!["run", "distribute"]);
    // Broken explicit claim: stable-declared impl reaches a global mix.
    assert_eq!(diags[1].severity, Severity::Error);
    assert!(diags[1].message.contains("ClaimsStableButMixes"));
    assert_eq!(
        diags[1].witness,
        vec!["run", "global_tally", "aggregate_all"]
    );
}

#[test]
fn stability_flow_clean_fixture_stays_clean() {
    // Explicit declarations everywhere provenance is reached, and the
    // claimed-stable impl stays component-local.
    assert!(
        analyze_fixture("stability_flow_clean.rs").is_empty(),
        "{:#?}",
        analyze_fixture("stability_flow_clean.rs")
    );
}

#[test]
fn fixtures_stay_silent_for_other_lints() {
    // Each fixture seeds exactly one lint; cross-checking guards against
    // over-eager matching.
    assert!(scan_fixture("nondeterminism_violation.rs", &[Lint::StabilityDiscipline]).is_empty());
    assert!(scan_fixture("unaccounted_primitive.rs", &[Lint::Nondeterminism]).is_empty());
    assert!(scan_fixture("stability_discipline.rs", &[Lint::Nondeterminism]).is_empty());
    assert!(scan_fixture("stability_discipline.rs", &[Lint::UnaccountedPrimitive]).is_empty());
    assert!(scan_fixture("recovery_accounting.rs", &[Lint::Nondeterminism]).is_empty());
    assert!(scan_fixture("recovery_accounting.rs", &[Lint::StabilityDiscipline]).is_empty());
    assert!(scan_fixture("unaccounted_primitive.rs", &[Lint::RecoveryAccounting]).is_empty());
    assert!(scan_fixture("determinism_violation.rs", &[Lint::Nondeterminism]).is_empty());
    assert!(scan_fixture("hot_path_allocation.rs", &[Lint::Nondeterminism]).is_empty());
    assert!(scan_fixture("hot_path_allocation.rs", &[Lint::StabilityDiscipline]).is_empty());
}
